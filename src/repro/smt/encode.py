"""CNF encoding of the eligible kernel-IR fragment.

The exploration engine and this encoder answer the same question —
"which executions does the memory model admit?" — from opposite ends.
Exploration enumerates interleavings of the *operational* Promising Arm
model; the encoder compiles the repo's *axiomatic* model
(:mod:`repro.memory.axiomatic`, proven behavior-equivalent to the
operational engine by the ``axiomatic`` conformance oracle over the
litmus catalog and the fuzz corpus) into propositional clauses, so a
SAT solver decides in one query what exploration pays an exponential
interleaving product for.

Scope — the same straight-line fragment the axiomatic model accepts:
``Load``/``Store``/``Mov``/``Barrier``/``Label``/``Nop`` threads, with
addresses and store values drawn from register expressions.  Values are
finite-domain: an abstract-interpretation fixpoint computes each
register/address/value domain first, and every semantic object (event
location, event value, reads-from choice, coherence order) becomes a
one-hot selector or Tseitin gate over those domains.  Anything outside
the fragment (branches, atomics, MMU, push/pull, unbounded domains)
raises :class:`Unsupported` and the caller falls back to exploration.

Encoding shape, mirroring ``axiomatic._consistent``:

* ``rf`` — per read, an exactly-one choice among the initial write and
  every domain-compatible store, with clauses forcing location
  agreement and value flow.
* ``co`` — one boolean strict total order over all stores (a global
  order restricted per location is exactly a family of per-location
  total orders).
* ``fr`` — derived: read r reading from w' is ``fr``-before every
  same-location write co-after w'.
* **internal** axiom — a strict-total-order relation over accesses
  required to contain ``po-loc ∪ rf ∪ co ∪ fr`` (same-location guards
  are Tseitin gates over the location selectors).
* **external** axiom (relaxed model) — a second strict total order
  containing the statically preserved program order (closed
  transitively through register-move nodes) plus the cross-thread
  ``rfe ∪ coe ∪ fre`` edges.  On the SC model a single order contains
  full ``po ∪ rf ∪ co ∪ fr`` instead.

A strict total order extending a set of required edges exists iff the
edge set is acyclic, so satisfiability of the order variables *is* the
acyclicity check.

Outcome projection matches :func:`repro.memory.exploration.behavior_of`
bit for bit: observed registers read the end-of-thread symbolic
register file (``None`` when never written), final memory per observed
location is the co-maximal write's value (or the initial value), both
exposed as one-hot indicator literals so AllSAT enumeration can block
on them directly.

Bounded unrolling: ``depth=k`` encodes only each thread's first ``k``
instructions.  Since threads are loop-free, any consistent prefix
execution extends to a full one (append the missing events at the end
of every order), so a SAT violation query at depth ``k`` is a real
counterexample; an UNSAT answer is only a bounded verdict unless ``k``
covers every thread (see docs/MODEL.md).

Two seeded mutants live here for the mutation-killing suite:
``bmc-drop-clause`` drops every from-read (``fr``) order constraint and
``bmc-off-by-one-bound`` truncates each thread one instruction short.
Both must be caught by the ``backend`` conformance oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.ir.dependencies import preserved_program_order
from repro.ir.expr import BinOp, Expr, Imm, Reg
from repro.ir.instructions import (
    Barrier,
    Instruction,
    Label,
    Load,
    Mov,
    Nop,
    Store,
)
from repro.ir.program import Program, Thread
from repro.memory import mutants
from repro.memory.semantics import (
    ModelConfig,
    resolve_model,
    resolve_vm_features,
)
from repro.smt.cnf import CnfBuilder

__all__ = [
    "MAX_DOMAIN",
    "MAX_EVENTS",
    "BmcEvent",
    "ProgramEncoding",
    "Unsupported",
    "fragment_eligible",
    "quick_unsupported",
]

#: Cap on memory-access events; order-relation transitivity is cubic.
MAX_EVENTS = 32
#: Cap on any single finite domain (values or locations).
MAX_DOMAIN = 64
#: Cap on the operand-domain product expanded per binary operator.
MAX_COMBOS = 4096
#: Abstract-interpretation rounds before giving up on convergence.
_MAX_ROUNDS = 100

_FRAGMENT = (Load, Store, Mov, Barrier, Label, Nop)


class Unsupported(Exception):
    """The program/config is outside the CNF-encodable fragment."""


def fragment_eligible(program: Program) -> bool:
    """Straight-line Load/Store/Mov/Barrier threads only (axiomatic scope)."""
    return all(
        isinstance(instr, _FRAGMENT)
        for thread in program.threads
        for instr in thread.instrs
    )


def quick_unsupported(
    program: Program, cfg: ModelConfig
) -> Optional[str]:
    """Cheap structural gate (no domain analysis); None when encodable.

    The full :class:`ProgramEncoding` constructor can still raise
    :class:`Unsupported` (domain blow-ups surface only during
    analysis); callers treat that identically.
    """
    if not fragment_eligible(program):
        return "non-straight-line or non-load/store instruction"
    cfg = resolve_model(resolve_vm_features(cfg))
    if cfg.tso:
        # The CNF encoder knows the SC and Promising-Arm axiomatic
        # theories only; TSO queries always fall back to exploration
        # until the encoder learns the TSO (store-order) axioms.
        return "TSO store-buffer semantics are operational-only"
    if cfg.vm_features:
        return "relaxed-virtual-memory features are operational-only"
    if cfg.oracle_sequences:
        return "oracle sequences are operational-only"
    if cfg.owned_access_required:
        return "ownership (push/pull DRF) panics are operational-only"
    stores = sum(
        isinstance(i, Store) for t in program.threads for i in t.instrs
    )
    accesses = stores + sum(
        isinstance(i, Load) for t in program.threads for i in t.instrs
    )
    if accesses > MAX_EVENTS:
        return f"{accesses} accesses exceed the {MAX_EVENTS}-event cap"
    if stores + len(program.initial_memory) > cfg.max_memory:
        return "timeline may exceed max_memory (exploration would cut)"
    return None


@dataclass(frozen=True)
class BmcEvent:
    """One memory-access event of the unrolled program."""

    idx: int            # dense event index
    tidx: int           # thread position in program.threads
    iidx: int           # instruction index within the thread
    tid: int            # thread id
    is_read: bool
    instr: Instruction


#: Reads-from source standing for the initial memory write.
INIT = "init"

SymInt = Dict[int, int]  # value -> indicator literal


class ProgramEncoding:
    """CNF unrolling of one program under one model configuration.

    Builds the full clause set on construction; query helpers
    (:meth:`outcome_block`, :meth:`decode_outcome`,
    :meth:`writes_at`) serve the backend on top of it.  Raises
    :class:`Unsupported` when the program leaves the fragment.
    """

    def __init__(
        self,
        program: Program,
        cfg: ModelConfig,
        observe_locs: Optional[Sequence[int]] = None,
        depth: Optional[int] = None,
    ) -> None:
        reason = quick_unsupported(program, cfg)
        if reason is not None:
            raise Unsupported(reason)
        self.program = program
        self.cfg = cfg
        self.relaxed = cfg.relaxed
        self.observe_locs: Tuple[int, ...] = tuple(
            observe_locs
            if observe_locs is not None
            else sorted(program.initial_memory)
        )
        self.builder = CnfBuilder()
        self.depth = depth

        # --- unroll: per-thread instruction prefixes ------------------
        # ``complete`` reflects the *requested* depth; the seeded
        # off-by-one mutant silently shortens the actual unrolling so
        # the backend keeps claiming completeness — that lie is what
        # the backend conformance oracle must catch.
        requested: List[int] = []
        for thread in program.threads:
            limit = len(thread.instrs)
            if depth is not None:
                limit = min(limit, depth)
            requested.append(limit)
        self.complete = all(
            limit >= len(thread.instrs)
            for limit, thread in zip(requested, program.threads)
        )
        if mutants.enabled("bmc-off-by-one-bound"):
            limits = [max(0, limit - 1) for limit in requested]
        else:
            limits = requested
        self._limits = limits
        prefixes = [
            tuple(thread.instrs[:limit])
            for thread, limit in zip(program.threads, limits)
        ]

        self.events: List[BmcEvent] = []
        for tidx, (thread, instrs) in enumerate(zip(program.threads, prefixes)):
            for iidx, instr in enumerate(instrs):
                if isinstance(instr, (Load, Store)):
                    self.events.append(BmcEvent(
                        idx=len(self.events), tidx=tidx, iidx=iidx,
                        tid=thread.tid, is_read=isinstance(instr, Load),
                        instr=instr,
                    ))
        if len(self.events) > MAX_EVENTS:
            raise Unsupported(
                f"{len(self.events)} accesses exceed the {MAX_EVENTS}-event cap"
            )
        self.reads = [e for e in self.events if e.is_read]
        self.writes = [e for e in self.events if not e.is_read]

        # --- finite domains (abstract-interpretation fixpoint) -------
        self._read_doms = self._analyze_domains(prefixes)

        # --- symbolic thread evaluation -> indicator literals ---------
        b = self.builder
        #: event idx -> {loc: lit}; gates for writes and reads alike.
        self.loc_ind: Dict[int, SymInt] = {}
        #: event idx -> {value: lit}; fresh selectors for reads, gates
        #: for stores.
        self.val_ind: Dict[int, SymInt] = {}
        #: (tid, reg) -> SymInt or None, in behavior_of order.
        self.reg_outcome: List[Tuple[int, str, Optional[SymInt]]] = []
        by_pos = {(e.tidx, e.iidx): e for e in self.events}
        for tidx, (thread, instrs) in enumerate(zip(program.threads, prefixes)):
            regsym: Dict[str, SymInt] = {}
            for iidx, instr in enumerate(instrs):
                if isinstance(instr, Mov):
                    regsym[instr.dst] = self._eval_sym(instr.src, regsym)
                elif isinstance(instr, Load):
                    event = by_pos[(tidx, iidx)]
                    self.loc_ind[event.idx] = self._eval_sym(
                        instr.addr, regsym
                    )
                    dom = sorted(self._read_doms[event.idx])
                    sel = b.one_hot(dom)
                    self.val_ind[event.idx] = sel
                    regsym[instr.dst] = dict(sel)
                elif isinstance(instr, Store):
                    event = by_pos[(tidx, iidx)]
                    self.loc_ind[event.idx] = self._eval_sym(
                        instr.addr, regsym
                    )
                    self.val_ind[event.idx] = self._eval_sym(
                        instr.value, regsym
                    )
            for reg in thread.observed:
                self.reg_outcome.append(
                    (thread.tid, reg, regsym.get(reg))
                )

        # --- reads-from selectors ------------------------------------
        #: read event idx -> {writer event idx or INIT: selector var}.
        self.rf_sel: Dict[int, Dict[object, int]] = {}
        for r in self.reads:
            cands: Dict[object, int] = {INIT: b.new_var()}
            for w in self.writes:
                if self._doms_meet(r.idx, w.idx):
                    cands[w.idx] = b.new_var()
            b.exactly_one(list(cands.values()))
            self.rf_sel[r.idx] = cands
            self._constrain_rf(r, cands)

        # --- coherence: global strict total order over writes --------
        self._co_lit = self._total_order(len(self.writes))

        # --- consistency axioms --------------------------------------
        if self.relaxed:
            self._internal_axiom()
            self._external_axiom(prefixes)
        else:
            self._sc_axiom()

        # --- final-memory projection ---------------------------------
        #: loc -> {value: lit} for each observed location.
        self.mem_outcome: List[Tuple[int, SymInt]] = [
            (loc, self._final_memory_ind(loc)) for loc in self.observe_locs
        ]

    # ------------------------------------------------------------------
    # domains

    def _eval_dom(
        self, expr: Expr, regdom: Dict[str, FrozenSet[int]]
    ) -> FrozenSet[int]:
        if isinstance(expr, Imm):
            return frozenset((expr.value,))
        if isinstance(expr, Reg):
            dom = regdom.get(expr.name)
            if dom is None:
                raise Unsupported(
                    f"register {expr.name!r} read before written"
                )
            return dom
        if isinstance(expr, BinOp):
            lhs = self._eval_dom(expr.lhs, regdom)
            rhs = self._eval_dom(expr.rhs, regdom)
            if len(lhs) * len(rhs) > MAX_COMBOS:
                raise Unsupported("operand-domain product too large")
            out = set()
            for a in lhs:
                for bv in rhs:
                    try:
                        out.add(BinOp(expr.op, Imm(a), Imm(bv)).eval({}))
                    except Exception:
                        raise Unsupported(
                            f"partial operator {expr.op!r} over domain"
                        )
            if len(out) > MAX_DOMAIN:
                raise Unsupported("value domain exceeds cap")
            return frozenset(out)
        raise Unsupported(f"expression {type(expr).__name__} not encodable")

    def _analyze_domains(
        self, prefixes: Sequence[Tuple[Instruction, ...]]
    ) -> Dict[int, FrozenSet[int]]:
        """Fixpoint read-value domains (and, implicitly, all loc domains).

        Iterates per-thread abstract evaluation: a read's value domain
        is the union of the initial values of its possible locations and
        the value domains of every location-compatible store.  Domains
        only grow and are capped, so the loop converges or trips the
        cap.
        """
        program = self.program
        by_pos = {(e.tidx, e.iidx): e for e in self.events}
        read_dom: Dict[int, FrozenSet[int]] = {
            r.idx: frozenset() for r in self.reads
        }
        loc_dom: Dict[int, FrozenSet[int]] = {
            e.idx: frozenset() for e in self.events
        }
        val_dom: Dict[int, FrozenSet[int]] = {
            w.idx: frozenset() for w in self.writes
        }
        for _round in range(_MAX_ROUNDS):
            changed = False
            for tidx, instrs in enumerate(prefixes):
                regdom: Dict[str, FrozenSet[int]] = {}
                for iidx, instr in enumerate(instrs):
                    if isinstance(instr, Mov):
                        regdom[instr.dst] = self._eval_dom(instr.src, regdom)
                        continue
                    if not isinstance(instr, (Load, Store)):
                        continue
                    event = by_pos[(tidx, iidx)]
                    locs = self._eval_dom(instr.addr, regdom)
                    if len(locs) > MAX_DOMAIN:
                        raise Unsupported("location domain exceeds cap")
                    if locs != loc_dom[event.idx]:
                        loc_dom[event.idx] = locs
                        changed = True
                    if isinstance(instr, Load):
                        vals = {
                            program.initial_value(loc) for loc in locs
                        }
                        for w in self.writes:
                            if loc_dom[w.idx] & locs:
                                vals |= val_dom[w.idx]
                        if len(vals) > MAX_DOMAIN:
                            raise Unsupported("value domain exceeds cap")
                        frozen = frozenset(vals)
                        if frozen != read_dom[event.idx]:
                            read_dom[event.idx] = frozen
                            changed = True
                        regdom[instr.dst] = frozen
                    else:
                        vals = self._eval_dom(instr.value, regdom)
                        if vals != val_dom[event.idx]:
                            val_dom[event.idx] = vals
                            changed = True
            if not changed:
                break
        else:
            raise Unsupported("domain analysis did not converge")
        for r in self.reads:
            if not read_dom[r.idx] or not loc_dom[r.idx]:
                raise Unsupported("empty domain after analysis")
        self._loc_doms = loc_dom
        self._write_val_doms = val_dom
        return read_dom

    def _doms_meet(self, ridx: int, widx: int) -> bool:
        return bool(self._loc_doms[ridx] & self._loc_doms[widx])

    # ------------------------------------------------------------------
    # symbolic evaluation

    def _eval_sym(self, expr: Expr, regsym: Dict[str, SymInt]) -> SymInt:
        b = self.builder
        if isinstance(expr, Imm):
            return {expr.value: b.TRUE}
        if isinstance(expr, Reg):
            sym = regsym.get(expr.name)
            if sym is None:
                raise Unsupported(
                    f"register {expr.name!r} read before written"
                )
            return sym
        if isinstance(expr, BinOp):
            lhs = self._eval_sym(expr.lhs, regsym)
            rhs = self._eval_sym(expr.rhs, regsym)
            if len(lhs) * len(rhs) > MAX_COMBOS:
                raise Unsupported("operand-domain product too large")
            acc: Dict[int, List[int]] = {}
            for a, la in lhs.items():
                for bv, lb in rhs.items():
                    try:
                        v = BinOp(expr.op, Imm(a), Imm(bv)).eval({})
                    except Exception:
                        raise Unsupported(
                            f"partial operator {expr.op!r} over domain"
                        )
                    acc.setdefault(v, []).append(b.and_gate((la, lb)))
            return {v: b.or_gate(lits) for v, lits in acc.items()}
        raise Unsupported(f"expression {type(expr).__name__} not encodable")

    # ------------------------------------------------------------------
    # relations

    def _same_loc(self, aidx: int, bidx: int) -> int:
        """Gate literal: events a and b target the same location."""
        b = self.builder
        common = set(self.loc_ind[aidx]) & set(self.loc_ind[bidx])
        if not common:
            return b.FALSE
        return b.or_gate(
            b.and_gate((self.loc_ind[aidx][loc], self.loc_ind[bidx][loc]))
            for loc in sorted(common)
        )

    def _constrain_rf(self, r: BmcEvent, cands: Dict[object, int]) -> None:
        """Location agreement and value flow for one read's rf choice."""
        b = self.builder
        r_locs = self._loc_doms[r.idx]
        r_dom = self._read_doms[r.idx]
        init_var = cands[INIT]
        for loc in sorted(r_locs):
            init_val = self.program.initial_value(loc)
            b.implies(
                (init_var, self.loc_ind[r.idx][loc]),
                self.val_ind[r.idx][init_val],
            )
        for w in self.writes:
            var = cands.get(w.idx)
            if var is None:
                continue
            w_locs = self._loc_doms[w.idx]
            for loc in sorted(r_locs | w_locs):
                if loc in r_locs and loc in w_locs:
                    b.implies(
                        (var, self.loc_ind[w.idx][loc]),
                        self.loc_ind[r.idx][loc],
                    )
                    b.implies(
                        (var, self.loc_ind[r.idx][loc]),
                        self.loc_ind[w.idx][loc],
                    )
                elif loc in w_locs:
                    b.implies((var,), -self.loc_ind[w.idx][loc])
                else:
                    b.implies((var,), -self.loc_ind[r.idx][loc])
            for v, w_lit in self.val_ind[w.idx].items():
                if v in r_dom:
                    b.implies((var, w_lit), self.val_ind[r.idx][v])
                else:
                    b.implies((var,), -w_lit)

    def _total_order(self, n: int):
        """Boolean strict total order over range(n); returns lit(i, j)."""
        b = self.builder
        pair: Dict[Tuple[int, int], int] = {}
        for i in range(n):
            for j in range(i + 1, n):
                pair[(i, j)] = b.new_var()

        def lit(i: int, j: int) -> int:
            return pair[(i, j)] if i < j else -pair[(j, i)]

        for a in range(n):
            for mid in range(n):
                if mid == a:
                    continue
                for c in range(n):
                    if c == a or c == mid:
                        continue
                    b.add(-lit(a, mid), -lit(mid, c), lit(a, c))
        return lit

    def _order_edges(self, lit, external_only: bool) -> None:
        """Require rf / co / fr edges in the order relation *lit*.

        ``lit`` maps *event indices in self.events* (positions of the
        access list) — helpers below translate.  ``external_only``
        restricts to cross-thread edges (the relaxed external axiom).
        """
        b = self.builder
        epos = {e.idx: i for i, e in enumerate(self.events)}
        wpos = {w.idx: i for i, w in enumerate(self.writes)}

        def cross(a: BmcEvent, c: BmcEvent) -> bool:
            return a.tidx != c.tidx

        by_idx = {e.idx: e for e in self.events}
        # rf edges: writer -> reader.
        for r in self.reads:
            for wkey, var in self.rf_sel[r.idx].items():
                if wkey is INIT:
                    continue
                w = by_idx[wkey]
                if external_only and not cross(w, r):
                    continue
                b.implies((var,), lit(epos[w.idx], epos[r.idx]))
        # co edges (same-location-guarded).
        for i, w1 in enumerate(self.writes):
            for w2 in self.writes[i + 1:]:
                if external_only and not cross(w1, w2):
                    continue
                sl = self._same_loc(w1.idx, w2.idx)
                if sl == b.FALSE:
                    continue
                co12 = self._co_lit(wpos[w1.idx], wpos[w2.idx])
                b.implies((sl, co12), lit(epos[w1.idx], epos[w2.idx]))
                b.implies((sl, -co12), lit(epos[w2.idx], epos[w1.idx]))
        # fr edges: reader -> co-later same-location write.  (Seeded
        # mutant site: bmc-drop-clause drops exactly these.)
        if mutants.enabled("bmc-drop-clause"):
            return
        for r in self.reads:
            for w in self.writes:
                if external_only and not cross(r, w):
                    continue
                sl = self._same_loc(r.idx, w.idx)
                if sl == b.FALSE:
                    continue
                for wkey, var in self.rf_sel[r.idx].items():
                    if wkey == w.idx:
                        continue
                    if wkey is INIT:
                        # INIT is co-first everywhere: any same-loc
                        # write is co-after the initial write.
                        b.implies(
                            (var, sl), lit(epos[r.idx], epos[w.idx])
                        )
                    else:
                        co_after = self._co_lit(wpos[wkey], wpos[w.idx])
                        b.implies(
                            (var, sl, co_after),
                            lit(epos[r.idx], epos[w.idx]),
                        )

    def _internal_axiom(self) -> None:
        """po-loc ∪ rf ∪ co ∪ fr fits in a strict total order."""
        b = self.builder
        lit = self._total_order(len(self.events))
        epos = {e.idx: i for i, e in enumerate(self.events)}
        for i, a in enumerate(self.events):
            for c in self.events[i + 1:]:
                if a.tidx == c.tidx:  # program order: a before c
                    sl = self._same_loc(a.idx, c.idx)
                    if sl != b.FALSE:
                        b.implies((sl,), lit(epos[a.idx], epos[c.idx]))
        self._order_edges(lit, external_only=False)

    def _external_axiom(
        self, prefixes: Sequence[Tuple[Instruction, ...]]
    ) -> None:
        """ppo ∪ rfe ∪ coe ∪ fre fits in a strict total order."""
        b = self.builder
        lit = self._total_order(len(self.events))
        epos = {e.idx: i for i, e in enumerate(self.events)}
        # Static ppo, transitively closed through Mov/barrier nodes so
        # dependency chains that route through non-access instructions
        # still order their access endpoints.
        access_at: Dict[Tuple[int, int], BmcEvent] = {
            (e.tidx, e.iidx): e for e in self.events
        }
        for tidx, instrs in enumerate(prefixes):
            thread = self.program.threads[tidx]
            if len(instrs) == len(thread.instrs):
                prefix_thread = thread
            else:
                prefix_thread = Thread(
                    tid=thread.tid, instrs=tuple(instrs),
                    name=thread.name, observed=thread.observed,
                )
            adj: Dict[int, List[int]] = {}
            for i, j in preserved_program_order(prefix_thread):
                adj.setdefault(i, []).append(j)
            for start in list(adj):
                if (tidx, start) not in access_at:
                    continue
                reach = set()
                stack = list(adj.get(start, ()))
                while stack:
                    node = stack.pop()
                    if node in reach:
                        continue
                    reach.add(node)
                    stack.extend(adj.get(node, ()))
                for end in reach:
                    target = access_at.get((tidx, end))
                    if target is not None:
                        b.add(lit(
                            epos[access_at[(tidx, start)].idx],
                            epos[target.idx],
                        ))
        self._order_edges(lit, external_only=True)

    def _sc_axiom(self) -> None:
        """SC: full po ∪ rf ∪ co ∪ fr fits in one strict total order."""
        b = self.builder
        lit = self._total_order(len(self.events))
        epos = {e.idx: i for i, e in enumerate(self.events)}
        for i, a in enumerate(self.events):
            for c in self.events[i + 1:]:
                if a.tidx == c.tidx:
                    b.add(lit(epos[a.idx], epos[c.idx]))
        self._order_edges(lit, external_only=False)

    # ------------------------------------------------------------------
    # outcome projection

    def _final_memory_ind(self, loc: int) -> SymInt:
        """Indicator literals for the final value of *loc*."""
        b = self.builder
        wpos = {w.idx: i for i, w in enumerate(self.writes)}
        targeting = [
            w for w in self.writes if loc in self._loc_doms[w.idx]
        ]
        acc: Dict[int, List[int]] = {}
        none_at = b.and_gate(
            -self.loc_ind[w.idx][loc] for w in targeting
        )
        if none_at != b.FALSE:
            acc.setdefault(self.program.initial_value(loc), []).append(
                none_at
            )
        for w in targeting:
            later = []
            for w2 in targeting:
                if w2.idx == w.idx:
                    continue
                later.append(-b.and_gate((
                    self.loc_ind[w2.idx][loc],
                    self._co_lit(wpos[w.idx], wpos[w2.idx]),
                )))
            is_last = b.and_gate(
                [self.loc_ind[w.idx][loc]] + later
            )
            if is_last == b.FALSE:
                continue
            for v, v_lit in self.val_ind[w.idx].items():
                acc.setdefault(v, []).append(b.and_gate((is_last, v_lit)))
        return {v: b.or_gate(lits) for v, lits in acc.items()}

    def decode_outcome(
        self, model_value
    ) -> Tuple[Tuple[Tuple[int, str, Optional[int]], ...],
               Tuple[Tuple[int, int], ...]]:
        """(registers, memory) of a model, in ``behavior_of`` order.

        *model_value* is a callable literal -> bool (e.g.
        ``solver.value_of``).
        """
        registers = []
        for tid, reg, sym in self.reg_outcome:
            if sym is None:
                registers.append((tid, reg, None))
                continue
            chosen = [v for v, lit in sym.items() if model_value(lit)]
            assert len(chosen) == 1, "register indicator not one-hot"
            registers.append((tid, reg, chosen[0]))
        memory = []
        for loc, sym in self.mem_outcome:
            chosen = [v for v, lit in sym.items() if model_value(lit)]
            assert len(chosen) == 1, "memory indicator not one-hot"
            memory.append((loc, chosen[0]))
        return tuple(registers), tuple(memory)

    def outcome_block(self, model_value) -> List[int]:
        """Blocking-clause literals excluding this model's outcome.

        Empty when the outcome has no free indicator (single possible
        outcome) — the caller then stops enumerating.
        """
        lits: List[int] = []
        for _tid, _reg, sym in self.reg_outcome:
            if sym is None:
                continue
            for _v, lit in sym.items():
                if lit != self.builder.TRUE and model_value(lit):
                    lits.append(-lit)
        for _loc, sym in self.mem_outcome:
            for _v, lit in sym.items():
                if lit != self.builder.TRUE and model_value(lit):
                    lits.append(-lit)
        return lits

    # ------------------------------------------------------------------
    # condition-query helpers

    def loc_domain(self, idx: int) -> FrozenSet[int]:
        """The locations event *idx* may target."""
        return self._loc_doms[idx]

    def writes_at(self, loc: int) -> List[Tuple[BmcEvent, int]]:
        """(write event, at-loc literal) for writes that may hit *loc*."""
        return [
            (w, self.loc_ind[w.idx][loc])
            for w in self.writes
            if loc in self._loc_doms[w.idx]
        ]
