"""A small CDCL SAT solver, pure python, zero dependencies.

Implements the classic MiniSat recipe: two-watched-literal unit
propagation, first-UIP conflict-clause learning, VSIDS-style activity
ordering with phase saving, and geometric restarts.  Instances produced
by :mod:`repro.smt.encode` are small (hundreds of variables, tens of
thousands of clauses), so the solver favors clarity and auditability
over throughput tricks; the point of a hand-rolled solver is that the
BMC backend stays dependency-free and fully inspectable.

The solver is incremental in the one way AllSAT enumeration needs:
clauses may be added between :meth:`Solver.solve` calls (blocking
clauses), and learned clauses are kept across calls.  There is no
assumption interface — callers build a fresh solver per query from the
shared clause list instead, which keeps the solver state machine small
enough to trust.

:meth:`Solver.to_dimacs` emits the original (non-learned) clause set in
standard DIMACS CNF, so any external solver can be used to audit an
answer offline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["SatStats", "Solver"]

#: Multiplicative activity bump applied on every conflict; activities
#: are rescaled when they overflow this ceiling.
_ACTIVITY_LIMIT = 1e100
_ACTIVITY_DECAY = 1.0 / 0.95


@dataclass
class SatStats:
    """Counters of one solver's lifetime (all :meth:`Solver.solve` calls)."""

    variables: int = 0
    clauses: int = 0
    learned: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    solve_calls: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON reports."""
        return {
            "variables": self.variables,
            "clauses": self.clauses,
            "learned": self.learned,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "solve_calls": self.solve_calls,
        }


class Solver:
    """CDCL SAT solver over integer literals (DIMACS convention).

    Variables are positive integers allocated by :meth:`new_var`;
    literal ``v`` means the variable is true, ``-v`` that it is false.
    """

    def __init__(self) -> None:
        self._nvars = 0
        # var-indexed arrays (index 0 unused).
        self._assign: List[int] = [0]        # 0 unassigned, +1 true, -1 false
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._heap: List[Tuple[float, int]] = []
        self._watches: Dict[int, List[List[int]]] = {}
        self._dimacs: List[Tuple[int, ...]] = []
        self._ok = True
        self.stats = SatStats()

    # ------------------------------------------------------------------
    # problem construction

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its positive literal."""
        self._nvars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        heapq.heappush(self._heap, (0.0, self._nvars))
        self.stats.variables = self._nvars
        return self._nvars

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became UNSAT.

        Backtracks to decision level 0 first, which discards the current
        satisfying assignment — callers enumerating models must read the
        model (``value_of``) *before* adding the blocking clause.
        """
        self._cancel_until(0)
        self._qhead = len(self._trail)
        raw = tuple(lits)
        self._dimacs.append(raw)
        if not self._ok:
            return False
        seen = set()
        clause: List[int] = []
        for lit in raw:
            v = abs(lit)
            if not 1 <= v <= self._nvars:
                raise ValueError(f"unknown literal {lit}")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._value(lit)
            if val == 1:
                return True  # already satisfied at level 0
            if val == -1:
                continue  # false at level 0: drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            self._ok = self._propagate() is None
            return self._ok
        self.stats.clauses += 1
        self._attach(clause)
        return True

    def _attach(self, clause: List[int]) -> None:
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    # ------------------------------------------------------------------
    # assignment plumbing

    def _value(self, lit: int) -> int:
        a = self._assign[abs(lit)]
        return a if lit > 0 else -a

    def value_of(self, lit: int) -> bool:
        """Truth of *lit* in the current (satisfying) assignment."""
        val = self._value(lit)
        assert val != 0, f"literal {lit} unassigned in model"
        return val == 1

    def model(self) -> List[bool]:
        """Variable truth values, indexed by variable (index 0 unused)."""
        return [a == 1 for a in self._assign]

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        v = abs(lit)
        self._assign[v] = 1 if lit > 0 else -1
        self._level[v] = self._decision_level()
        self._reason[v] = reason
        self._trail.append(lit)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            v = abs(lit)
            self._phase[v] = lit > 0
            self._assign[v] = 0
            self._reason[v] = None
            heapq.heappush(self._heap, (-self._activity[v], v))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # unit propagation (two watched literals)

    def _propagate(self) -> Optional[List[int]]:
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            neg = -p
            watchers = self._watches.get(neg)
            if not watchers:
                continue
            kept: List[List[int]] = []
            conflict: Optional[List[int]] = None
            for idx, clause in enumerate(watchers):
                if clause[0] == neg:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(clause)
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        break
                else:
                    kept.append(clause)
                    if self._value(first) == -1:
                        conflict = clause
                        kept.extend(watchers[idx + 1:])
                        break
                    self._enqueue(first, clause)
            self._watches[neg] = kept
            if conflict is not None:
                self._qhead = len(self._trail)
                return conflict
        return None

    # ------------------------------------------------------------------
    # conflict analysis (first UIP)

    def _bump(self, v: int) -> None:
        self._activity[v] += self._var_inc
        if self._activity[v] > _ACTIVITY_LIMIT:
            for i in range(1, self._nvars + 1):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        learnt: List[int] = [0]
        seen = [False] * (self._nvars + 1)
        counter = 0
        p: Optional[int] = None
        index = len(self._trail)
        current = self._decision_level()
        reason: Sequence[int] = conflict
        while True:
            start = 0 if p is None else 1
            for q in reason[start:]:
                v = abs(q)
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self._level[v] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                p = self._trail[index]
                if seen[abs(p)]:
                    break
            counter -= 1
            seen[abs(p)] = False
            if counter == 0:
                break
            reason = self._reason[abs(p)] or ()
        learnt[0] = -p
        if len(learnt) == 1:
            return learnt, 0
        # Second-highest decision level is the backtrack target; swap
        # that literal into the second watch position.
        max_i = max(range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i])])
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    # ------------------------------------------------------------------
    # search

    def _pick_branch(self) -> Optional[int]:
        while self._heap:
            _, v = heapq.heappop(self._heap)
            if self._assign[v] == 0:
                return v
        for v in range(1, self._nvars + 1):
            if self._assign[v] == 0:
                return v
        return None

    def solve(self) -> bool:
        """Decide satisfiability; on True, :meth:`model` is a witness."""
        self.stats.solve_calls += 1
        if not self._ok:
            return False
        self._cancel_until(0)
        self._qhead = 0
        restart_limit = 128
        conflicts_since_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return False
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    self.stats.learned += 1
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                self._var_inc *= _ACTIVITY_DECAY
                continue
            if conflicts_since_restart >= restart_limit:
                conflicts_since_restart = 0
                restart_limit = int(restart_limit * 1.5)
                self.stats.restarts += 1
                self._cancel_until(0)
                continue
            v = self._pick_branch()
            if v is None:
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(v if self._phase[v] else -v, None)

    # ------------------------------------------------------------------
    # DIMACS emission

    def to_dimacs(self) -> str:
        """The original clause set in DIMACS CNF (learned clauses omitted)."""
        lines = [f"p cnf {self._nvars} {len(self._dimacs)}"]
        for clause in self._dimacs:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"
