"""The BMC verification backend: solver answers shaped like engine answers.

Sits between the CNF encoder and the callers that normally consume
exploration results.  Three entry points:

* :func:`bmc_explore` — the full behavior set of a program under a
  model config, as a synthetic :class:`ExplorationResult`
  (``states_explored == 0`` marks it solver-derived).  Behaviors are
  enumerated AllSAT-style: solve, decode the outcome indicators, block
  that outcome, repeat.
* :func:`bmc_condition_results` — wDRF condition verdicts for a fused
  pass-request group, one :class:`ConditionResult` per condition,
  matching the monitors' ``finalize`` semantics (verdict and
  exhaustiveness; evidence strings are backend-flavored).  Violation
  queries are single SAT calls over assertion literals.
* :func:`bmc_witness_trace` — replays a BMC counterexample through the
  *operational* engine into a real :class:`ExecutionTrace`, so
  ``repro trace`` / ``obs.render`` explain solver counterexamples
  exactly like exploration ones.  The replay doubles as an independent
  soundness check: a violation the operational model cannot reproduce
  would surface here.

Depth bounds: ``REPRO_BMC_DEPTH=k`` checks conditions over each
thread's first ``k`` instructions.  A SAT answer at any depth is a real
counterexample (loop-free prefix executions always extend — see
docs/MODEL.md); an UNSAT answer is a bounded verdict
(``exhaustive=False``) unless the bound covers every thread.
``REPRO_BMC_INDUCTION=1`` extends an UNSAT bound stepwise until the
unrolling closes (the loop-free analogue of a k-induction ladder),
recovering an unbounded verdict.

Answers are cached under :func:`repro.memory.cache.bmc_query_key`
(exploration-key derived, ``backend="bmc"`` axis, solver-source
digest), so repeat verification hits disk exactly like exploration
does.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.ir.program import Program
from repro.memory.cache import bmc_query_key, cached_bmc_query
from repro.memory.datatypes import Behavior, ExplorationResult
from repro.memory.semantics import ModelConfig
from repro.memory.trace import ExecutionTrace, find_execution
from repro.smt.encode import (
    ProgramEncoding,
    Unsupported,
    quick_unsupported,
)
from repro.vrm.conditions import ConditionResult, WDRFCondition

__all__ = [
    "BmcStats",
    "bmc_behaviors",
    "bmc_condition_results",
    "bmc_depth",
    "bmc_explore",
    "bmc_induction_enabled",
    "bmc_supported",
    "bmc_witness_trace",
]

#: Outcome-enumeration cap; hitting it means the outcome space is too
#: large for AllSAT and the caller must fall back to exploration.
_ALLSAT_CAP = 4096

#: Monitor kinds the condition compiler understands.
_CONDITION_KINDS = (
    "drf_kernel", "barrier_misuse", "write_once", "memory_isolation",
)


@dataclass
class BmcStats:
    """Aggregated backend counters (bench/observability surface)."""

    encodings: int = 0
    solve_calls: int = 0
    sat_answers: int = 0
    unsat_answers: int = 0
    outcomes: int = 0
    clauses: int = 0
    variables: int = 0
    conflicts: int = 0
    propagations: int = 0

    def merge_encoding(self, encoding: ProgramEncoding) -> None:
        """Fold one encoding's size into the counters."""
        self.encodings += 1
        self.clauses += encoding.builder.num_clauses
        self.variables += encoding.builder.num_vars

    def merge_solver(self, solver) -> None:
        """Fold one solver's lifetime counters in."""
        self.solve_calls += solver.stats.solve_calls
        self.conflicts += solver.stats.conflicts
        self.propagations += solver.stats.propagations

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON reports."""
        return {
            "encodings": self.encodings,
            "solve_calls": self.solve_calls,
            "sat_answers": self.sat_answers,
            "unsat_answers": self.unsat_answers,
            "outcomes": self.outcomes,
            "clauses": self.clauses,
            "variables": self.variables,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
        }


def bmc_depth() -> Optional[int]:
    """The ``REPRO_BMC_DEPTH`` unrolling bound, or None for full depth."""
    raw = os.environ.get("REPRO_BMC_DEPTH", "").strip()
    if not raw:
        return None
    try:
        depth = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_BMC_DEPTH must be an integer, got {raw!r}")
    if depth < 0:
        raise ValueError("REPRO_BMC_DEPTH must be >= 0")
    return depth


def bmc_induction_enabled() -> bool:
    """``REPRO_BMC_INDUCTION=1`` extends bounded verdicts to closure."""
    return os.environ.get("REPRO_BMC_INDUCTION", "0") == "1"


def bmc_supported(
    program: Program,
    cfg: ModelConfig,
    monitors: Sequence[object] = (),
) -> Optional[str]:
    """Why this query cannot go to the BMC backend; None when it can.

    A cheap structural gate — the encoder may still discover a domain
    blow-up and raise :class:`Unsupported`, which callers treat the
    same way (silent fallback to exploration).
    """
    reason = quick_unsupported(program, cfg)
    if reason is not None:
        return reason
    for monitor in monitors:
        kind = getattr(monitor, "kind", None)
        if kind not in _CONDITION_KINDS:
            return f"monitor kind {kind!r} not encodable"
    return None


# ----------------------------------------------------------------------
# behavior enumeration (litmus / conformance surface)


def _enumerate_behaviors(
    encoding: ProgramEncoding, stats: Optional[BmcStats]
) -> FrozenSet[Behavior]:
    solver = encoding.builder.solver()
    behaviors = set()
    for _ in range(_ALLSAT_CAP):
        if not solver.solve():
            break
        registers, memory = encoding.decode_outcome(solver.value_of)
        behaviors.add(
            Behavior(registers=registers, memory=memory, faults=())
        )
        block = encoding.outcome_block(solver.value_of)
        if not block:
            break  # single possible outcome
        if not solver.add_clause(block):
            break
    else:
        raise Unsupported("outcome enumeration exceeded the AllSAT cap")
    if stats is not None:
        stats.merge_solver(solver)
        stats.outcomes += len(behaviors)
    if not behaviors:
        raise VerificationError(
            "BMC found no consistent execution — encoder defect"
        )
    return frozenset(behaviors)


def bmc_behaviors(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    cache: bool = True,
    stats: Optional[BmcStats] = None,
) -> FrozenSet[Behavior]:
    """All behaviors of *program* under *cfg*, decided by SAT.

    Raises :class:`Unsupported` outside the fragment (callers fall
    back to exploration) and :class:`VerificationError` on an encoder
    self-check failure.  Behavior enumeration requires the full
    unrolling — a ``REPRO_BMC_DEPTH`` prefix would yield neither an
    under- nor an over-approximation of the behavior set.
    """
    if bmc_depth() is not None and not _covers_program(program, bmc_depth()):
        raise Unsupported(
            "REPRO_BMC_DEPTH truncates the program; behavior sets need "
            "the full unrolling"
        )

    def compute() -> FrozenSet[Behavior]:
        encoding = ProgramEncoding(program, cfg, observe_locs)
        if stats is not None:
            stats.merge_encoding(encoding)
        return _enumerate_behaviors(encoding, stats)

    if not cache:
        return compute()
    key = bmc_query_key(program, cfg, observe_locs, "behaviors")
    return cached_bmc_query(key, compute)


def bmc_explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    cache: bool = True,
    stats: Optional[BmcStats] = None,
) -> ExplorationResult:
    """:func:`bmc_behaviors` shaped like an exploration result.

    ``states_explored == 0`` with ``complete=True`` marks the result
    as solver-derived; ``stats`` stays None (there was no engine run).
    """
    behaviors = bmc_behaviors(program, cfg, observe_locs, cache, stats)
    return ExplorationResult(
        behaviors=behaviors,
        complete=True,
        states_explored=0,
        cut_paths=0,
    )


def _covers_program(program: Program, depth: Optional[int]) -> bool:
    if depth is None:
        return True
    return all(depth >= len(t.instrs) for t in program.threads)


# ----------------------------------------------------------------------
# wDRF condition verdicts


def _assert_consistent(
    encoding: ProgramEncoding, stats: Optional[BmcStats]
) -> None:
    """Self-check: the encoding must admit at least one execution."""
    solver = encoding.builder.solver()
    sat = solver.solve()
    if stats is not None:
        stats.merge_solver(solver)
    if not sat:
        raise VerificationError(
            "BMC encoding admits no execution — encoder defect"
        )


def _violation_query(
    encoding: ProgramEncoding,
    disjuncts: List[int],
    stats: Optional[BmcStats],
):
    """Solve "some assertion literal holds"; returns a model or None."""
    b = encoding.builder
    lits = [lit for lit in disjuncts if lit != b.FALSE]
    if not lits:
        return None
    solver = b.solver(extra=[lits])
    sat = solver.solve()
    if stats is not None:
        stats.merge_solver(solver)
        if sat:
            stats.sat_answers += 1
        else:
            stats.unsat_answers += 1
    return solver.value_of if sat else None


def _write_once_violations(
    encoding: ProgramEncoding,
    initial_values: Dict[int, int],
    locs: FrozenSet[int],
    stats: Optional[BmcStats],
) -> Tuple[str, ...]:
    b = encoding.builder
    disjuncts: List[int] = []
    for loc in sorted(locs):
        hits = encoding.writes_at(loc)
        if initial_values.get(loc, 0) != 0:
            disjuncts.extend(lit for _, lit in hits)
        for i, (_, lit1) in enumerate(hits):
            for _, lit2 in hits[i + 1:]:
                disjuncts.append(b.and_gate((lit1, lit2)))
    model = _violation_query(encoding, disjuncts, stats)
    if model is None:
        return ()
    found: List[str] = []
    for loc in sorted(locs):
        hits = [
            (w, lit) for w, lit in encoding.writes_at(loc) if model(lit)
        ]
        init = initial_values.get(loc, 0)
        if init != 0 and hits:
            found.append(
                f"kernel PT entry {loc:#x} (initially {init:#x}) "
                f"overwritten by CPU {hits[0][0].tid}"
            )
        if len(hits) > 1:
            found.append(
                f"kernel PT entry {loc:#x} written {len(hits)} times "
                f"(CPUs {sorted({w.tid for w, _ in hits})})"
            )
    return tuple(sorted(set(found)))


def _isolation_violations(
    encoding: ProgramEncoding,
    kernel_locs: FrozenSet[int],
    user_tids: FrozenSet[int],
    stats: Optional[BmcStats],
) -> Tuple[str, ...]:
    disjuncts: List[int] = []
    user_writes = [w for w in encoding.writes if w.tid in user_tids]
    for w in user_writes:
        for loc in sorted(kernel_locs & encoding.loc_domain(w.idx)):
            disjuncts.append(encoding.loc_ind[w.idx][loc])
    model = _violation_query(encoding, disjuncts, stats)
    if model is None:
        return ()
    found = set()
    for w in user_writes:
        for loc in sorted(kernel_locs & encoding.loc_domain(w.idx)):
            if model(encoding.loc_ind[w.idx][loc]):
                values = [
                    v for v, lit in encoding.val_ind[w.idx].items()
                    if model(lit)
                ]
                found.add(
                    f"user CPU {w.tid} wrote kernel location {loc:#x} "
                    f"(value {values[0]:#x})"
                )
    return tuple(sorted(found))


def _condition_result(
    encoding: ProgramEncoding,
    monitor,
    stats: Optional[BmcStats],
) -> ConditionResult:
    """One monitor's verdict, decided by SAT over *encoding*."""
    kind = monitor.kind
    size = (
        f"{encoding.builder.num_clauses} clauses / "
        f"{encoding.builder.num_vars} variables"
    )
    if kind == "drf_kernel":
        # The fragment has no Pull/Push and the gate rejects configs
        # with owned-access requirements, so ownership panics cannot
        # occur: the condition holds on every execution by construction.
        return ConditionResult(
            condition=WDRFCondition.DRF_KERNEL,
            holds=True,
            exhaustive=encoding.complete,
            evidence=(
                f"BMC: no ownership transfers in the straight-line "
                f"fragment ({size})",
            ),
        )
    if kind == "barrier_misuse":
        dynamic = ConditionResult(
            condition=WDRFCondition.NO_BARRIER_MISUSE,
            holds=True,
            exhaustive=encoding.complete,
            evidence=(
                f"BMC: pull barrier-fulfillment vacuous without "
                f"ownership transfers ({size})",
            ),
        )
        static = getattr(monitor, "_static", None)
        if static is None:
            return dynamic
        return ConditionResult(
            condition=WDRFCondition.NO_BARRIER_MISUSE,
            holds=static.holds and dynamic.holds,
            exhaustive=static.exhaustive and dynamic.exhaustive,
            evidence=static.evidence + dynamic.evidence,
            violations=static.violations + dynamic.violations,
        )
    if kind == "write_once":
        violations = _write_once_violations(
            encoding, monitor._init, monitor._locs, stats
        )
        return ConditionResult(
            condition=WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
            holds=not violations,
            exhaustive=True if violations else encoding.complete,
            evidence=(
                f"BMC: {len(encoding.writes)} writes checked against "
                f"{len(monitor._locs)} kernel PT entries ({size})",
            ),
            violations=violations,
        )
    if kind == "memory_isolation":
        dynamic = _isolation_violations(
            encoding, monitor._kernel_locs, monitor._user_tids, stats
        )
        violations = monitor._static_violations + dynamic
        return ConditionResult(
            condition=monitor._condition,
            holds=not violations,
            exhaustive=True if dynamic else encoding.complete,
            evidence=monitor._evidence,
            violations=violations,
        )
    raise Unsupported(f"monitor kind {kind!r} not encodable")


def bmc_condition_results(
    program: Program,
    cfg: ModelConfig,
    requests: Sequence[Tuple[str, object]],
    cache: bool = True,
    stats: Optional[BmcStats] = None,
) -> Dict[str, ConditionResult]:
    """Verdicts for one fused request group, decided by BMC.

    *requests* is the verifier's ``(name, PassRequest)`` list; every
    request shares *cfg*.  Honors ``REPRO_BMC_DEPTH`` /
    ``REPRO_BMC_INDUCTION``: with a bound below the program diameter
    the check climbs the depth ladder only in induction mode, otherwise
    it reports bounded (non-exhaustive) clean verdicts.
    """
    depth = bmc_depth()
    if depth is None or _covers_program(program, depth):
        depths: List[Optional[int]] = [None]
    elif bmc_induction_enabled():
        diameter = max(
            (len(t.instrs) for t in program.threads), default=0
        )
        depths = list(range(depth, diameter + 1))
    else:
        depths = [depth]

    monitors = [plan.monitor for _, plan in requests]
    query = "conditions:" + ",".join(
        f"{name}={plan.monitor.fingerprint()}"
        for name, plan in requests
    ) + f":depths={depths!r}"

    def compute() -> Tuple[Tuple[str, ConditionResult], ...]:
        results: Dict[str, ConditionResult] = {}
        for rung in depths:
            encoding = ProgramEncoding(program, cfg, (), depth=rung)
            if stats is not None:
                stats.merge_encoding(encoding)
            _assert_consistent(encoding, stats)
            results = {
                name: _condition_result(encoding, plan.monitor, stats)
                for name, plan in requests
            }
            if any(not r.holds for r in results.values()):
                break  # a violation at any depth is definitive
            if all(r.exhaustive for r in results.values()):
                break
        return tuple(results.items())

    if not cache:
        return dict(compute())
    key = bmc_query_key(program, cfg, (), query)
    return dict(cached_bmc_query(key, compute))


# ----------------------------------------------------------------------
# counterexample replay


def _witness_predicate(monitor):
    """Operational state predicate reproducing *monitor*'s violation."""
    kind = monitor.kind
    if kind == "write_once":
        locs, init = monitor._locs, monitor._init

        def write_once_violated(state) -> bool:
            per_loc: Dict[int, int] = {}
            for msg in state.memory:
                if msg.loc in locs:
                    per_loc[msg.loc] = per_loc.get(msg.loc, 0) + 1
            return any(
                count > 1 or init.get(loc, 0) != 0
                for loc, count in per_loc.items()
            )

        return write_once_violated
    if kind == "memory_isolation":
        kernel_locs = monitor._kernel_locs
        user_tids = monitor._user_tids

        def isolation_violated(state) -> bool:
            return any(
                msg.tid in user_tids and msg.loc in kernel_locs
                for msg in state.memory
            )

        return isolation_violated
    return None


def bmc_witness_trace(
    program: Program,
    cfg: ModelConfig,
    monitor,
    observe_locs: Optional[Sequence[int]] = None,
) -> Optional[ExecutionTrace]:
    """Replay a BMC violation through the operational engine.

    Searches for an execution whose final timeline exhibits the same
    class of violation the solver found, and returns the step-by-step
    :class:`ExecutionTrace` (rendered by ``obs.render`` like any
    exploration counterexample).  Returns None when the monitor kind
    has no dynamic violations or no operational execution reproduces
    one — the latter would mean the solver over-approximated, which
    the backend cross-check treats as a hard failure.
    """
    state_predicate = _witness_predicate(monitor)
    if state_predicate is None:
        return None
    return find_execution(
        program,
        cfg,
        predicate=lambda behavior: True,
        observe_locs=observe_locs,
        state_predicate=state_predicate,
    )
