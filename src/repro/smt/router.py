"""Cost-model routing between the exploration and BMC backends.

Exploration cost grows with the interleaving count — roughly the
multinomial coefficient of the per-thread event counts, further
multiplied by promise certification on the relaxed model.  BMC cost
grows with the clause count, which is polynomial (cubic in the event
count, from order-relation transitivity).  The router estimates both
from cheap structural features and sends each query to the predicted
cheaper backend; a prior cached exploration always wins (replaying it
is free).

Knobs (documented in docs/API.md):

* ``REPRO_BACKEND`` — ``explore`` (default), ``bmc``, or ``auto``.
* ``REPRO_BACKEND_CHECK=1`` — run both backends and fail verification
  on any verdict disagreement (the cross-backend discipline of
  ``REPRO_POR_CHECK`` / ``REPRO_SHARD_CHECK``).

:func:`decide` is a pure function of a feature dict so the routing
policy is unit-testable under forced features; :func:`route` computes
the features from a real query.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.ir.instructions import Load, Store
from repro.ir.program import Program
from repro.memory.cache import peek_exploration_states
from repro.memory.semantics import ModelConfig
from repro.smt.encode import quick_unsupported

__all__ = [
    "RouteDecision",
    "backend_check_enabled",
    "backend_default",
    "decide",
    "features_of",
    "route",
]

_BACKENDS = ("explore", "bmc", "auto")

#: Predicted state count (log10) above which exploration is deemed the
#: slower backend.  Calibrated against BENCH_exploration.json: promise
#: certification holds the engine to a few thousand relaxed states per
#: second, while a fragment-sized CNF encode+solve costs tens of
#: milliseconds, so the break-even sits around 10^3 predicted states.
_EXPLOSION_LOG10 = 3.0

#: Each promisable (plain, non-release) store roughly doubles the
#: certification work on the relaxed model.
_PROMISE_LOG10 = math.log10(2.0)


def backend_default() -> str:
    """The session backend from ``REPRO_BACKEND`` (default ``explore``)."""
    value = os.environ.get("REPRO_BACKEND", "explore").strip().lower()
    if value not in _BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {_BACKENDS}, got {value!r}"
        )
    return value


def backend_check_enabled() -> bool:
    """``REPRO_BACKEND_CHECK=1``: run both backends, compare verdicts."""
    return os.environ.get("REPRO_BACKEND_CHECK", "0") == "1"


@dataclass(frozen=True)
class RouteDecision:
    """One routing verdict: the chosen backend and why."""

    backend: str
    reason: str
    features: Dict[str, float] = field(default_factory=dict)


def features_of(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    monitors: Optional[Sequence[object]] = None,
) -> Dict[str, float]:
    """The cost-model features of one query.

    ``est_log10_states`` is the log-multinomial interleaving count of
    the per-thread access counts plus a promise factor;
    ``est_log10_clauses`` is the cubic order-relation term.
    ``cached_states`` is the prior exploration's state count when the
    exploration cache already holds this query (-1.0 otherwise).
    """
    per_thread = [
        sum(isinstance(i, (Load, Store)) for i in t.instrs)
        for t in program.threads
    ]
    events = sum(per_thread)
    instructions = sum(len(t.instrs) for t in program.threads)
    promisable = sum(
        isinstance(i, Store) and not i.release
        for t in program.threads
        for i in t.instrs
    )
    # log10 of the multinomial coefficient events! / prod(n_i!).
    log_states = (
        math.lgamma(events + 1)
        - sum(math.lgamma(n + 1) for n in per_thread)
    ) / math.log(10)
    if cfg.relaxed:
        log_states += promisable * _PROMISE_LOG10
    cached = peek_exploration_states(
        program,
        cfg,
        observe_locs=list(observe_locs) if observe_locs is not None else None,
        monitors=list(monitors) if monitors else None,
    )
    return {
        "instructions": float(instructions),
        "threads": float(len(program.threads)),
        "events": float(events),
        "promisable_stores": float(promisable),
        "est_log10_states": log_states,
        "est_log10_clauses": 3 * math.log10(max(events, 1)) + 1.0,
        "cached_states": float(cached) if cached is not None else -1.0,
    }


def decide(features: Dict[str, float]) -> RouteDecision:
    """The pure routing policy over a feature dict."""
    if features.get("cached_states", -1.0) >= 0:
        return RouteDecision(
            backend="explore",
            reason=(
                f"exploration cached "
                f"({int(features['cached_states'])} states, replay is free)"
            ),
            features=features,
        )
    est = features.get("est_log10_states", 0.0)
    if est >= _EXPLOSION_LOG10:
        return RouteDecision(
            backend="bmc",
            reason=(
                f"~10^{est:.1f} interleavings exceed the 10^"
                f"{_EXPLOSION_LOG10:.0f} exploration break-even"
            ),
            features=features,
        )
    return RouteDecision(
        backend="explore",
        reason=f"~10^{est:.1f} interleavings are cheap to enumerate",
        features=features,
    )


def route(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    monitors: Optional[Sequence[object]] = None,
) -> RouteDecision:
    """Route one query: structural gate first, then the cost model."""
    reason = quick_unsupported(program, cfg)
    if reason is not None:
        return RouteDecision(backend="explore", reason=f"BMC unsupported: {reason}")
    return decide(features_of(program, cfg, observe_locs, monitors))
