"""MMU substrate: page tables, walkers, TLBs, and the SMMU."""

from repro.mmu.pagetable import (
    BlockEntry,
    MultiLevelPageTable,
    PTWrite,
    PageTableLayout,
)
from repro.mmu.walker import WalkResult, WalkStatus, walk, walk_memory
from repro.mmu.tlb import TLB, TLBStats
from repro.mmu.smmu import DMAResult, SMMU, SMMUContext

__all__ = [
    "BlockEntry",
    "MultiLevelPageTable",
    "PTWrite",
    "PageTableLayout",
    "WalkResult",
    "WalkStatus",
    "walk",
    "walk_memory",
    "TLB",
    "TLBStats",
    "DMAResult",
    "SMMU",
    "SMMUContext",
]
