"""Standalone TLB model.

The exploration executor embeds TLB state directly (it must be part of
the hashed machine state); this class is the reference model used by the
SeKVM functional layer and the performance simulator's cost accounting.
It is a finite, set-associative translation cache with broadcast
invalidation — the structure whose *capacity* differences between the
m400 (tiny TLB) and Seattle machines drive the paper's Table 3 results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """An LRU translation cache of bounded capacity.

    ``entries`` is the total capacity; lookups are keyed by
    ``(asid, vpn)`` so multiple address spaces (KServ vs each VM's stage 2
    context) contend for the same physical structure, as on hardware.
    """

    def __init__(self, entries: int, name: str = "tlb"):
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.capacity = entries
        self.name = name
        self._entries: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.stats = TLBStats()

    def lookup(self, asid: int, vpn: int) -> Optional[int]:
        key = (asid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def insert(self, asid: int, vpn: int, ppage: int) -> None:
        key = (asid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = ppage
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, asid: Optional[int] = None, vpn: Optional[int] = None) -> int:
        """Invalidate entries; None means "all" on that axis.

        Returns the number of entries dropped.
        """
        victims = [
            key
            for key in self._entries
            if (asid is None or key[0] == asid)
            and (vpn is None or key[1] == vpn)
        ]
        for key in victims:
            del self._entries[key]
        self.stats.invalidations += len(victims)
        return len(victims)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries
