"""Multi-level page tables.

Two representations serve different layers of the reproduction:

* :class:`PageTableLayout` lays tables out in the *flat word-addressed
  memory* of the kernel IR, so litmus programs and the KCore IR fragments
  can store to real entry locations and MMU walkers can race with them —
  the setting of Examples 4-6 and of the Transactional-Page-Table and
  Sequential-TLB-Invalidation conditions.
* :class:`MultiLevelPageTable` is the functional (tree-structured) page
  table used by the SeKVM model: stage 2 tables for KServ/VMs, SMMU
  tables for devices, and KCore's own EL2 table.  It keeps a full write
  log (location, old value, new value) so the wDRF checkers can audit
  update discipline, and it allocates intermediate tables from an
  explicit zeroed page pool exactly as ``set_s2pt`` does in the paper
  (Section 5.4).

Entries are word-granular: a page table at base ``b`` with index width
``w`` occupies locations ``b .. b + 2^w - 1``; a non-zero entry holds the
base of the next-level table or, at the leaf, the physical page.  Entry
value 0 means *empty* and faults the walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ProgramError, VerificationError
from repro.ir.program import MMUConfig


@dataclass(frozen=True)
class PTWrite:
    """One audited page-table write: where, what was there, what now."""

    loc: int
    old: int
    new: int
    level: int


@dataclass(frozen=True)
class BlockEntry:
    """A huge-page (block) descriptor at a non-leaf level.

    Covers ``2^(va_bits_per_level * levels_below)`` contiguous pages
    starting at ``base`` — Arm's 2 MB / 1 GB block mappings, which KCore
    uses for VM stage 2 tables to reduce TLB pressure.
    """

    base: int


class PageTableLayout:
    """Flat-memory page-table builder for kernel IR programs.

    ``base`` is the first location used for tables; tables are allocated
    upward, each ``2**va_bits_per_level`` words.  ``map`` applies a
    mapping immediately (for pre-state construction); ``plan_map``
    returns the write list *without* applying it, which is how the IR
    fragments for ``set_s2pt`` are generated and how the transactional
    checker enumerates reorderings.
    """

    def __init__(self, base: int, levels: int = 2, va_bits_per_level: int = 4):
        if levels < 1:
            raise ProgramError("need at least one level")
        self.base = base
        self.levels = levels
        self.va_bits_per_level = va_bits_per_level
        self.table_size = 1 << va_bits_per_level
        self.root = base
        self._next_free = base + self.table_size
        self.memory: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def mmu_config(self) -> MMUConfig:
        return MMUConfig(
            root=self.root,
            levels=self.levels,
            va_bits_per_level=self.va_bits_per_level,
        )

    def alloc_table(self) -> int:
        """Allocate a fresh (zeroed) table page."""
        table = self._next_free
        self._next_free += self.table_size
        return table

    def _indices(self, vpn: int) -> List[int]:
        mask = self.table_size - 1
        return [
            (vpn >> (self.va_bits_per_level * (self.levels - 1 - lvl))) & mask
            for lvl in range(self.levels)
        ]

    def entry_path(self, vpn: int) -> List[int]:
        """Entry locations a walk of *vpn* visits, using current tables.

        Requires all intermediate tables to exist (i.e. built via
        :meth:`map` or applied :meth:`plan_map` writes).
        """
        locs: List[int] = []
        table = self.root
        for level, idx in enumerate(self._indices(vpn)):
            loc = table + idx
            locs.append(loc)
            if level + 1 < self.levels:
                table = self.memory.get(loc, 0)
                if table == 0:
                    raise ProgramError(
                        f"entry_path({vpn:#x}): missing level-{level} table"
                    )
        return locs

    def plan_map(self, vpn: int, ppage: int) -> List[Tuple[int, int, int]]:
        """The ``(loc, value, level)`` writes mapping ``vpn -> ppage``.

        Walks from the root; missing intermediate tables are allocated
        from the pool and their insertion becomes part of the plan.  The
        plan is *not* applied; call :meth:`apply` to commit it.  This
        mirrors the walk-allocate-set procedure of ``set_s2pt``.
        """
        writes: List[Tuple[int, int, int]] = []
        planned: Dict[int, int] = {}
        table = self.root
        indices = self._indices(vpn)
        for level, idx in enumerate(indices):
            loc = table + idx
            if level + 1 == self.levels:
                writes.append((loc, ppage, level))
                break
            existing = planned.get(loc, self.memory.get(loc, 0))
            if existing == 0:
                new_table = self.alloc_table()
                writes.append((loc, new_table, level))
                planned[loc] = new_table
                table = new_table
            else:
                table = existing
        return writes

    def apply(self, writes: Sequence[Tuple[int, int, int]]) -> None:
        for loc, value, _level in writes:
            self.memory[loc] = value

    def map(self, vpn: int, ppage: int) -> List[Tuple[int, int, int]]:
        """Map ``vpn -> ppage`` immediately; returns the writes made."""
        writes = self.plan_map(vpn, ppage)
        self.apply(writes)
        return writes

    def unmap(self, vpn: int) -> Tuple[int, int, int]:
        """Clear the leaf entry of *vpn*; returns the single write."""
        leaf = self.entry_path(vpn)[-1]
        write = (leaf, 0, self.levels - 1)
        self.memory[leaf] = 0
        return write

    def leaf_entry(self, vpn: int) -> int:
        """The leaf entry location of a currently-mapped *vpn*."""
        return self.entry_path(vpn)[-1]

    def initial_memory(self) -> Dict[int, int]:
        """Memory contents (entry locations only) for program pre-state."""
        return dict(self.memory)


class MultiLevelPageTable:
    """Functional page table with an explicit zeroed page pool.

    Used by the SeKVM model for stage 2, SMMU, and EL2 tables.  The write
    log records every entry update so the condition checkers can audit
    that (a) the EL2 table is only ever written once per entry
    (Write-Once-Kernel-Mapping) and (b) stage 2 / SMMU updates are
    transactional (each ``map`` writes only freshly-allocated tables plus
    one previously-empty leaf; each ``unmap`` is a single write).
    """

    def __init__(
        self,
        levels: int = 4,
        va_bits_per_level: int = 9,
        pool_pages: int = 4096,
        name: str = "pt",
    ):
        if levels < 1:
            raise ProgramError("need at least one level")
        self.levels = levels
        self.va_bits_per_level = va_bits_per_level
        self.table_size = 1 << va_bits_per_level
        self.name = name
        self._pool_remaining = pool_pages
        self._next_table_id = 1
        self.root: Dict[int, object] = {}
        self.write_log: List[PTWrite] = []
        # Synthetic "locations" for the audit log: (table_id, index).
        self._table_ids: Dict[int, Dict[int, object]] = {0: self.root}

    # ------------------------------------------------------------------
    def _alloc_table(self) -> Tuple[int, Dict[int, object]]:
        if self._pool_remaining <= 0:
            raise VerificationError(
                f"{self.name}: page-table pool exhausted"
            )
        self._pool_remaining -= 1
        table_id = self._next_table_id
        self._next_table_id += 1
        table: Dict[int, object] = {}
        self._table_ids[table_id] = table
        return table_id, table

    def _indices(self, vpn: int) -> List[int]:
        if not 0 <= vpn < (1 << (self.va_bits_per_level * self.levels)):
            raise ProgramError(
                f"{self.name}: vpn {vpn:#x} outside the "
                f"{self.levels}x{self.va_bits_per_level}-bit address space"
            )
        mask = self.table_size - 1
        return [
            (vpn >> (self.va_bits_per_level * (self.levels - 1 - lvl))) & mask
            for lvl in range(self.levels)
        ]

    def _log(self, table_id: int, idx: int, old: int, new: int, level: int) -> None:
        loc = (table_id << 32) | idx
        self.write_log.append(PTWrite(loc=loc, old=old, new=new, level=level))

    # ------------------------------------------------------------------
    def walk(self, vpn: int) -> Optional[int]:
        """Translate *vpn*; None on fault (any empty entry).

        Block entries terminate the walk early: the physical page is the
        block base plus the untranslated low VPN bits.
        """
        node: Dict[int, object] = self.root
        indices = self._indices(vpn)
        for level, idx in enumerate(indices):
            entry = node.get(idx)
            if entry is None:
                return None
            if isinstance(entry, BlockEntry):
                below = self.levels - 1 - level
                offset_mask = (1 << (self.va_bits_per_level * below)) - 1
                return entry.base + (vpn & offset_mask)
            if level + 1 == self.levels:
                assert isinstance(entry, int)
                return entry
            assert isinstance(entry, tuple)
            node = entry[1]  # (table_id, table-dict)
        return None

    def is_mapped(self, vpn: int) -> bool:
        return self.walk(vpn) is not None

    def map(self, vpn: int, ppage: int, overwrite: bool = False) -> int:
        """Map ``vpn -> ppage``; returns the number of entry writes.

        Refuses to overwrite an existing leaf mapping unless asked — the
        default matches ``set_s2pt``'s check-and-set discipline, and the
        EL2 wrapper *never* passes ``overwrite=True``.
        """
        node = self.root
        node_id = 0
        indices = self._indices(vpn)
        writes = 0
        for level, idx in enumerate(indices):
            if level + 1 == self.levels:
                existing = node.get(idx)
                if existing is not None and not overwrite:
                    raise VerificationError(
                        f"{self.name}: map({vpn:#x}) would overwrite an "
                        f"existing mapping to {existing:#x}"
                    )
                self._log(node_id, idx, existing or 0, ppage, level)
                node[idx] = ppage
                writes += 1
                break
            entry = node.get(idx)
            if entry is None:
                table_id, table = self._alloc_table()
                self._log(node_id, idx, 0, table_id, level)
                node[idx] = (table_id, table)
                writes += 1
                node, node_id = table, table_id
            elif isinstance(entry, BlockEntry):
                raise VerificationError(
                    f"{self.name}: map({vpn:#x}) collides with a block "
                    f"mapping at level {level}"
                )
            else:
                assert isinstance(entry, tuple)
                node_id, node = entry[0], entry[1]
        return writes

    def map_block(self, vpn: int, base: int, level: int) -> None:
        """Install a block (huge-page) mapping at *level*.

        ``vpn`` must be aligned to the block size; the target entry must
        be empty (the same check-and-set discipline as leaf mappings,
        which is what keeps block installs transactional).
        """
        if not 0 <= level < self.levels - 1:
            raise VerificationError(
                f"{self.name}: block mappings live at levels "
                f"0..{self.levels - 2}, not {level}"
            )
        below = self.levels - 1 - level
        block_pages = 1 << (self.va_bits_per_level * below)
        if vpn % block_pages:
            raise VerificationError(
                f"{self.name}: vpn {vpn:#x} not aligned to the "
                f"{block_pages}-page block size"
            )
        node = self.root
        node_id = 0
        indices = self._indices(vpn)
        for lvl, idx in enumerate(indices):
            if lvl == level:
                if node.get(idx) is not None:
                    raise VerificationError(
                        f"{self.name}: block map at {vpn:#x} would "
                        f"overwrite an existing entry"
                    )
                self._log(node_id, idx, 0, base, lvl)
                node[idx] = BlockEntry(base)
                return
            entry = node.get(idx)
            if entry is None:
                table_id, table = self._alloc_table()
                self._log(node_id, idx, 0, table_id, lvl)
                node[idx] = (table_id, table)
                node, node_id = table, table_id
            elif isinstance(entry, BlockEntry):
                raise VerificationError(
                    f"{self.name}: vpn {vpn:#x} already covered by a block"
                )
            else:
                assert isinstance(entry, tuple)
                node_id, node = entry[0], entry[1]

    def unmap(self, vpn: int) -> bool:
        """Clear the entry mapping *vpn* (leaf or covering block);
        returns whether it was mapped.

        Never reclaims intermediate tables, matching ``clear_s2pt``: "it
        does not reclaim any empty table so no table at any level will be
        removed or substituted" (Section 5.4).
        """
        node = self.root
        node_id = 0
        indices = self._indices(vpn)
        for level, idx in enumerate(indices):
            entry = node.get(idx)
            if entry is None:
                return False
            if isinstance(entry, BlockEntry):
                self._log(node_id, idx, entry.base, 0, level)
                del node[idx]
                return True
            if level + 1 == self.levels:
                assert isinstance(entry, int)
                self._log(node_id, idx, entry, 0, level)
                del node[idx]
                return True
            assert isinstance(entry, tuple)
            node_id, node = entry[0], entry[1]
        return False

    def mappings(self) -> Iterator[Tuple[int, int]]:
        """All (vpn, ppage) pairs currently mapped.

        Block entries are expanded page by page (callers see the same
        view regardless of mapping granularity).
        """

        def rec(node: Dict[int, object], level: int, prefix: int):
            for idx, entry in sorted(node.items()):
                vpn_part = (prefix << self.va_bits_per_level) | idx
                if isinstance(entry, BlockEntry):
                    below = self.levels - 1 - level
                    pages = 1 << (self.va_bits_per_level * below)
                    base_vpn = vpn_part << (self.va_bits_per_level * below)
                    for offset in range(pages):
                        yield (base_vpn + offset, entry.base + offset)
                elif level + 1 == self.levels:
                    assert isinstance(entry, int)
                    yield (vpn_part, entry)
                else:
                    assert isinstance(entry, tuple)
                    yield from rec(entry[1], level + 1, vpn_part)

        yield from rec(self.root, 0, 0)

    @property
    def pool_remaining(self) -> int:
        return self._pool_remaining

    def table_count(self) -> int:
        """Number of table pages in use (including the root)."""
        return self._next_table_id
