"""SMMU (Arm's I/O MMU) model for DMA protection.

SeKVM uses SMMU page tables so DMA-capable devices assigned to a VM or
to KServ can only reach memory their owner is allowed to touch
(Section 5.3): KCore's memory is never mapped into any SMMU table, so
device DMA cannot read or write hypervisor state.

The model is deliberately structural: each device has an SMMU context
(a :class:`MultiLevelPageTable` plus an SMMU TLB), DMA reads/writes
translate through it, and KCore is the only agent allowed to mutate the
tables (through ``set_spt``/``clear_spt`` in :mod:`repro.sekvm.smmupt`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SecurityViolation
from repro.mmu.pagetable import MultiLevelPageTable
from repro.mmu.tlb import TLB


@dataclass
class DMAResult:
    """Outcome of a device DMA access."""

    ok: bool
    ppage: Optional[int] = None

    @property
    def faulted(self) -> bool:
        return not self.ok


class SMMUContext:
    """One device's translation context behind the SMMU."""

    def __init__(self, device_id: int, levels: int = 4, tlb_entries: int = 32):
        self.device_id = device_id
        self.pagetable = MultiLevelPageTable(
            levels=levels, name=f"smmu-dev{device_id}"
        )
        self.tlb = TLB(tlb_entries, name=f"smmu-tlb-dev{device_id}")

    def translate(self, iova: int) -> DMAResult:
        cached = self.tlb.lookup(self.device_id, iova)
        if cached is not None:
            return DMAResult(ok=True, ppage=cached)
        ppage = self.pagetable.walk(iova)
        if ppage is None:
            return DMAResult(ok=False)
        self.tlb.insert(self.device_id, iova, ppage)
        return DMAResult(ok=True, ppage=ppage)

    def invalidate_tlb(self, iova: Optional[int] = None) -> None:
        self.tlb.invalidate(asid=self.device_id, vpn=iova)


class SMMU:
    """The system SMMU: contexts for all DMA-capable devices.

    ``enabled`` is the hardware enable bit KCore proves is always set as
    a system invariant; with the SMMU disabled, DMA would bypass
    translation entirely, which is exactly the configuration SeKVM's
    proofs exclude.
    """

    def __init__(self, levels: int = 4):
        self.levels = levels
        self.enabled = True
        self.contexts: Dict[int, SMMUContext] = {}

    def context(self, device_id: int) -> SMMUContext:
        if device_id not in self.contexts:
            self.contexts[device_id] = SMMUContext(device_id, levels=self.levels)
        return self.contexts[device_id]

    def dma_access(self, device_id: int, iova: int) -> DMAResult:
        """Translate a device access; raises if the SMMU is off."""
        if not self.enabled:
            raise SecurityViolation(
                "SMMU disabled: DMA would bypass translation"
            )
        return self.context(device_id).translate(iova)
