"""Pure page-table walks over memory snapshots.

The exploration executor embeds its own walker (it must interleave walker
reads with the relaxed memory system); this module provides the *pure*
walk used by the Transactional-Page-Table checker: given a read function
over a memory snapshot, compute the translation outcome.  The checker
calls it once per subset of reordered page-table writes (Section 3,
condition 4: under arbitrary reordering, any walk must see the pre-state
result, the post-state result, or a fault).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.ir.program import MMUConfig


class WalkStatus(enum.Enum):
    OK = "ok"
    FAULT = "fault"


@dataclass(frozen=True)
class WalkResult:
    """Outcome of one translation attempt."""

    status: WalkStatus
    ppage: Optional[int] = None

    @staticmethod
    def ok(ppage: int) -> "WalkResult":
        return WalkResult(WalkStatus.OK, ppage)

    @staticmethod
    def fault() -> "WalkResult":
        return WalkResult(WalkStatus.FAULT)

    @property
    def is_fault(self) -> bool:
        return self.status is WalkStatus.FAULT


def walk(
    read: Callable[[int], int],
    mmu: MMUConfig,
    vpn: int,
    value_mask: int = -1,
) -> WalkResult:
    """Translate *vpn* by walking tables through *read*.

    ``read(loc)`` returns the current value of a page-table entry
    location; entry value 0 faults the walk.

    ``value_mask`` strips descriptor attribute bits before the entry is
    interpreted.  Descriptors written back by hardware access/dirty
    updates (the ``had`` VM feature) carry
    :data:`repro.memory.semantics.PTE_AF`/``PTE_DIRTY`` above the
    address bits; a raw walk over such a snapshot would treat
    ``frame | AF`` as a different (wrong) output frame at the leaf and
    as a garbage table pointer at non-leaf levels — every level of the
    walk must mask, exactly as the operational walker masks each
    candidate it consults.  The default ``-1`` mask is the identity
    (pre-``had`` snapshots are unaffected).
    """
    idx_mask = (1 << mmu.va_bits_per_level) - 1
    table = mmu.root
    for level in range(mmu.levels):
        shift = mmu.va_bits_per_level * (mmu.levels - 1 - level)
        entry = read(table + ((vpn >> shift) & idx_mask)) & value_mask
        if entry == 0:
            return WalkResult.fault()
        if level + 1 == mmu.levels:
            return WalkResult.ok(entry)
        table = entry
    return WalkResult.fault()


def walk_memory(
    memory: Mapping[int, int],
    mmu: MMUConfig,
    vpn: int,
    value_mask: int = -1,
) -> WalkResult:
    """Walk over a plain dict snapshot (missing locations read 0)."""
    return walk(lambda loc: memory.get(loc, 0), mmu, vpn, value_mask)
