"""Exception hierarchy for the VRM reproduction.

Every failure mode in the library raises a subclass of :class:`ReproError`
so callers can catch library-level errors distinctly from programming
mistakes (``TypeError`` etc.).  The memory-model executors additionally use
:class:`KernelPanic` to represent a *modeled* panic (e.g. an invalid
push/pull in the push/pull Promising model, or an explicit ``Panic``
instruction): a modeled panic is an *observable behavior*, not a Python
error, but exposing it as an exception lets single-run APIs surface it
naturally while the exploration engines catch and record it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ProgramError(ReproError):
    """A kernel IR program is malformed (unknown label, bad operand...)."""


class ExecutionError(ReproError):
    """An executor was driven into an invalid configuration.

    This indicates a bug in the caller or in the library, never a modeled
    hardware behavior.
    """


class ExplorationBudgetExceeded(ReproError):
    """A state-space exploration exceeded its configured budget.

    Checkers that require exhaustiveness treat this as "unknown" rather
    than silently reporting success.
    """


class KernelPanic(ReproError):
    """A *modeled* panic inside an executed kernel program.

    Raised by the ``Panic`` instruction and by push/pull ownership
    violations in the push/pull Promising model.  The exploration engines
    convert this into a recorded behavior; single-run entry points let it
    propagate.
    """

    def __init__(self, reason: str, cpu: int | None = None):
        self.reason = reason
        self.cpu = cpu
        where = f" on CPU {cpu}" if cpu is not None else ""
        super().__init__(f"kernel panic{where}: {reason}")


class VerificationError(ReproError):
    """A verification entry point was invoked on unsupported input."""


class SecurityViolation(ReproError):
    """A SeKVM security invariant (confidentiality/integrity) was broken.

    Raised by the security checkers in :mod:`repro.sekvm.security` when an
    adversarial scenario manages to read or write protected VM state; the
    test suite asserts these are *never* raised for the verified KCore and
    *always* raised for the seeded-vulnerable variants.
    """


class HypercallError(ReproError):
    """A KCore hypercall rejected its arguments.

    This is the modeled equivalent of KCore returning an error code to
    KServ: it is the *correct* behavior when KServ asks for something the
    security policy forbids (e.g. mapping a page it does not own).
    """
