"""VRM: executable reproduction of "Formal Verification of a
Multiprocessor Hypervisor on Arm Relaxed Memory Hardware" (SOSP 2021).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.ir` — the kernel IR.
* :mod:`repro.memory` — SC / Promising Arm / push-pull models.
* :mod:`repro.mmu` — page tables, walkers, TLBs, SMMU.
* :mod:`repro.vrm` — the wDRF conditions and theorem checks.
* :mod:`repro.litmus` — litmus corpus incl. the paper's Examples 1-7.
* :mod:`repro.sekvm` — the SeKVM hypervisor model.
* :mod:`repro.perf` — the evaluation (discrete-event) substrate.
"""

__version__ = "1.0.0"

from repro.errors import (
    ExecutionError,
    ExplorationBudgetExceeded,
    HypercallError,
    KernelPanic,
    ProgramError,
    ReproError,
    SecurityViolation,
    VerificationError,
)

__all__ = [
    "__version__",
    "ExecutionError",
    "ExplorationBudgetExceeded",
    "HypercallError",
    "KernelPanic",
    "ProgramError",
    "ReproError",
    "SecurityViolation",
    "VerificationError",
]
