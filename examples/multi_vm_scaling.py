#!/usr/bin/env python3
"""Multi-VM scalability demo (the Figure 9 experiment, Section 6).

Simulates 1..32 two-vCPU VMs running the application benchmarks on the
8-core m400 model under unmodified KVM and SeKVM, printing per-VM
performance normalized to one native instance — and verifying the
paper's scalability-parity claim: SeKVM tracks KVM within ~10% at every
VM count.

Run: ``python examples/multi_vm_scaling.py``
"""

from repro.perf import (
    VM_COUNTS,
    format_figure9,
    format_table3,
    run_figure9,
    run_table3,
)


def main() -> None:
    print("Microbenchmark costs feeding the scaling model (Table 3):")
    print(format_table3(run_table3()))
    print()

    points = run_figure9()
    print(format_figure9(points))
    print()

    table = {(p.workload, p.hypervisor, p.vms): p.normalized_perf for p in points}
    worst_gap = 0.0
    worst_at = None
    for (workload, hyp, n), perf in table.items():
        if hyp != "SeKVM":
            continue
        gap = 1.0 - perf / table[(workload, "KVM", n)]
        if gap > worst_gap:
            worst_gap, worst_at = gap, (workload, n)
    print(f"worst SeKVM-vs-KVM gap: {worst_gap:.1%} "
          f"(at {worst_at[0]}, {worst_at[1]} VMs)")
    print("Paper: 'even when running 32 concurrent VMs, SeKVM has no worse")
    print("than 10% overhead compared to unmodified KVM'.")


if __name__ == "__main__":
    main()
