#!/usr/bin/env python3
"""Quickstart: write a kernel fragment, run it on SC and relaxed Arm,
then verify it with the wDRF conditions.

This walks the core VRM workflow in four steps:

1. Build a two-CPU kernel program (a message-passing handoff) in the
   kernel IR.
2. Explore it on the SC model and on the Promising Arm model, and see
   the relaxed-memory-only behavior SC verification would have missed.
3. Fix it with release/acquire barriers and watch the behavior sets
   coincide (the wDRF theorem's guarantee).
4. Run the DRF-Kernel / No-Barrier-Misuse checkers via the push/pull
   Promising model on the instrumented version.

Run: ``python examples/quickstart.py``
"""

from repro.ir import MemSpace, ThreadBuilder, build_program
from repro.memory import compare_models
from repro.vrm import check_drf_kernel, check_no_barrier_misuse, check_theorem2

DATA, FLAG = 0x100, 0x200


def handoff_program(correct: bool, instrumented: bool = False):
    """CPU 0 publishes DATA then raises FLAG; CPU 1 waits and reads."""
    t0 = ThreadBuilder(0, name="producer")
    t0.store(DATA, 42)
    if instrumented:
        t0.push(DATA)
    t0.store(FLAG, 1, release=correct, space=MemSpace.SYNC)

    t1 = ThreadBuilder(1, name="consumer")
    t1.spin_until_eq("f", FLAG, 1, acquire=correct)
    if instrumented:
        t1.pull(DATA)
    t1.load("got", DATA)
    return build_program(
        [t0, t1],
        observed={1: ["got"]},
        initial_memory={DATA: 0, FLAG: 0},
        spaces={DATA: MemSpace.KERNEL, FLAG: MemSpace.SYNC},
        name=f"handoff[{'fixed' if correct else 'buggy'}]",
    )


def main() -> None:
    print("=" * 72)
    print("Step 1+2: the buggy handoff on SC vs Promising Arm")
    print("=" * 72)
    buggy = handoff_program(correct=False)
    comparison = compare_models(buggy)
    print(comparison.describe())
    print()
    print("The RM-only behavior (got=0 despite seeing the flag) is exactly")
    print("the class of bug Section 2 of the paper demonstrates: the code")
    print("verifies on an SC model but misbehaves on Arm hardware.")
    print()

    print("=" * 72)
    print("Step 3: the fixed handoff — SC proofs now transfer")
    print("=" * 72)
    fixed = handoff_program(correct=True)
    comparison = compare_models(fixed)
    print(comparison.describe())
    theorem = check_theorem2(fixed)
    print(theorem.describe())
    print()

    print("=" * 72)
    print("Step 4: checking the wDRF conditions mechanically")
    print("=" * 72)
    for correct in (True, False):
        program = handoff_program(correct=correct, instrumented=True)
        ownership = ((DATA, 0),)
        drf = check_drf_kernel(program, shared_locs=[DATA],
                               initial_ownership=ownership)
        nbm = check_no_barrier_misuse(program, shared_locs=[DATA],
                                      initial_ownership=ownership)
        verdict = "VERIFIED" if (drf.verified and nbm.verified) else "REJECTED"
        print(f"{program.name:<18} DRF-Kernel={drf.holds} "
              f"No-Barrier-Misuse={nbm.holds}  ->  {verdict}")
        for violation in (drf.violations + nbm.violations)[:2]:
            print(f"    {violation}")
    print()
    print("A program that passes these checks (plus the page-table and")
    print("isolation conditions) is guaranteed by the wDRF theorem to have")
    print("no Arm-relaxed-memory behaviors beyond its SC behaviors.")


if __name__ == "__main__":
    main()
