#!/usr/bin/env python3
"""A guided tour of the paper's Section 2: seven relaxed-memory bugs
that pass SC verification, each demonstrated and then fixed.

For every example the script explores the program on both hardware
models and shows the buggy outcome appearing *only* on the Promising
Arm model, then runs the wDRF-conforming variant where it disappears.

Run: ``python examples/rm_bug_tour.py``
"""

from repro.litmus import paper_examples, run_litmus


def main() -> None:
    print("Section 2 of the paper: RM behavior bugs that SC proofs miss")
    print("=" * 72)
    for test in paper_examples():
        outcome = run_litmus(test)
        print(f"\n{test.name}")
        if test.paper_ref:
            print(f"  ({test.paper_ref}) {test.description}")
        condition = ", ".join(f"{k}={v}" for k, v in test.condition.items())
        print(f"  postcondition: {condition}")
        print(
            f"  SC model:            "
            f"{'observable' if outcome.observed_sc else 'forbidden'}"
        )
        print(
            f"  Promising Arm model: "
            f"{'observable' if outcome.observed_rm else 'forbidden'}"
        )
        if test.exposes_rm_bug and outcome.observed_rm:
            print("  --> RELAXED-MEMORY BUG: this outcome cannot happen on the")
            print("      SC model the code was verified on, but real Arm")
            print("      hardware can produce it.")
        status = "matches the paper" if outcome.passed else "MISMATCH"
        print(f"  [{status}; {outcome.rm.states_explored} states explored]")

    print("\n" + "=" * 72)
    print("Every [fixed]/[transactional]/[barrier]/[oracle] variant obeys")
    print("the wDRF conditions, and its relaxed behaviors collapse back")
    print("into the SC set — the content of the wDRF theorem (Theorem 1).")


if __name__ == "__main__":
    main()
