#!/usr/bin/env python3
"""Verify SeKVM: run the full wDRF verification suite (Section 5).

Checks every concurrency-relevant KCore primitive against all six wDRF
conditions, for the original configuration and — with ``--all`` — for
the full verified matrix of Section 5.6 (Linux 4.18..5.5 × {3,4}-level
stage 2 tables).  Also runs the seeded-bug variants, which must all be
rejected, and the SeKVM security property checks (confidentiality,
integrity, attack battery).

Run: ``python examples/verify_sekvm.py [--all]``
"""

import sys

from repro.sekvm import (
    all_attacks_refused,
    check_vm_confidentiality,
    check_vm_integrity,
    default_version,
    run_attack_battery,
    verify_all_versions,
    verify_sekvm,
)


def main() -> None:
    sweep_all = "--all" in sys.argv

    print("wDRF verification of SeKVM's KCore primitives")
    print("=" * 72)
    if sweep_all:
        outcomes = verify_all_versions(include_buggy=False)
    else:
        outcomes = [verify_sekvm(default_version(), include_buggy=True)]
    for outcome in outcomes:
        print(outcome.describe())
        print()

    verified = all(o.all_verified for o in outcomes)
    expected = all(o.all_as_expected for o in outcomes)
    print(f"all verified primitives pass: {verified}")
    print(f"all outcomes as expected (incl. seeded bugs rejected): {expected}")
    print()

    print("SeKVM security guarantees (functional model)")
    print("=" * 72)
    print(f"VM confidentiality (noninterference): "
          f"{check_vm_confidentiality()}")
    print(f"VM integrity under attack battery:    {check_vm_integrity()}")
    for attack in run_attack_battery():
        status = "SUCCEEDED (BAD)" if attack.succeeded else "refused"
        print(f"  {attack.name:<28} {status}")
    print(f"all attacks refused: {all_attacks_refused()}")
    print()
    print("Per Theorem 4, because the wDRF conditions verify, these")
    print("SC-model guarantees extend to Arm relaxed memory hardware.")


if __name__ == "__main__":
    main()
