#!/usr/bin/env python3
"""DMA protection through SMMU page tables (Sections 5.3-5.5).

Demonstrates the SMMU substrate end to end: KCore programs a device's
SMMU page table with ``set_spt``/``clear_spt``, device DMA translates
through it, and DMA can never reach KCore memory or another owner's
pages.  Also shows the unmap discipline (single write + barrier + SMMU
TLB invalidation) that the Sequential-TLB-Invalidation audit checks.

Run: ``python examples/smmu_dma_protection.py``
"""

from repro.errors import HypercallError, SecurityViolation
from repro.sekvm import KSERV, SeKVMSystem, make_image
from repro.vrm import audit_operation_writes


def main() -> None:
    cpu = 0
    system = SeKVMSystem(total_pages=128)
    kcore = system.kcore

    print("1. KServ assigns a NIC (device 7) a DMA buffer it owns")
    buffer_pfn = system.kserv.alloc_page()
    system.memory.write(buffer_pfn, 0xBEEF)
    kcore.smmu_map(cpu, device_id=7, iova=0x40, pfn=buffer_pfn, owner=KSERV)
    dma = system.smmu.dma_access(device_id=7, iova=0x40)
    print(f"   DMA read at iova 0x40 -> pfn {dma.ppage:#x}, "
          f"content {system.memory.read(dma.ppage):#x}")

    print("2. Device DMA outside its mapping faults")
    miss = system.smmu.dma_access(device_id=7, iova=0x41)
    print(f"   DMA at unmapped iova 0x41 faulted: {miss.faulted}")

    print("3. KServ cannot program DMA at a VM's pages")
    image, _ = make_image(1, 2)
    vmid = system.boot_vm(image, cpu=cpu)
    vm_pfn = system.vm_pages(vmid)[0]
    try:
        kcore.smmu_map(cpu, device_id=7, iova=0x50, pfn=vm_pfn, owner=KSERV)
        print("   !! attack succeeded (should never happen)")
    except HypercallError as exc:
        print(f"   refused: {exc}")

    print("4. ...nor at KCore's own pages")
    kcore_pfn = system.kcore_pages()[0]
    try:
        kcore.smmu_map(cpu, device_id=7, iova=0x51, pfn=kcore_pfn, owner=KSERV)
        print("   !! attack succeeded (should never happen)")
    except SecurityViolation as exc:
        print(f"   refused: {exc}")

    print("5. Unmap follows the Sequential-TLB-Invalidation discipline")
    manager = kcore.smmu_manager(7)
    kcore.smmu_unmap(cpu, device_id=7, iova=0x40)
    op = manager.operations[-1]
    audit = audit_operation_writes(op.writes, op.kind)
    print(f"   unmap: {len(op.writes)} write(s), barrier={op.barrier_before_tlbi}, "
          f"smmu-tlbi={op.tlbi}, transactional-audit holds={audit.holds}")
    after = system.smmu.dma_access(device_id=7, iova=0x40)
    print(f"   DMA after unmap faulted: {after.faulted}")


if __name__ == "__main__":
    main()
