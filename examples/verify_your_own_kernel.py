#!/usr/bin/env python3
"""Verify YOUR kernel code: a lock-free SPSC ring buffer, end to end.

The paper's framework is not SeKVM-specific — any kernel fragment
expressed in the IR can be checked.  This example builds something the
paper never verified: a single-producer/single-consumer ring buffer
(the shape of virtio queues and kernel log buffers), instruments it
with push/pull ownership, and runs the full battery:

1. explore it on SC vs Promising Arm (the buggy variant loses data);
2. check DRF-Kernel and No-Barrier-Misuse;
3. check the wDRF theorem (RM ⊆ SC);
4. render a trace of the relaxed failure.

Run: ``python examples/verify_your_own_kernel.py``
"""

from repro.ir import MemSpace, Reg, ThreadBuilder, build_program
from repro.memory import compare_models, explain_outcome
from repro.memory.semantics import PROMISING_ARM
from repro.vrm import check_drf_kernel, check_no_barrier_misuse, check_theorem2

HEAD, TAIL = 0x10, 0x11            # published indices (sync variables)
SLOT0, SLOT1 = 0x20, 0x21          # the ring's two slots
ITEMS = (7, 9)                     # what the producer sends


def ring_buffer_program(correct: bool):
    """Producer fills both slots; consumer drains them."""
    producer = ThreadBuilder(0, name="producer")
    for i, value in enumerate(ITEMS):
        slot = SLOT0 + (i & 1)
        producer.pull(slot)
        producer.store(slot, value)
        producer.push(slot)
        producer.store(HEAD, i + 1, release=correct, space=MemSpace.SYNC)

    consumer = ThreadBuilder(1, name="consumer")
    for i in range(len(ITEMS)):
        slot = SLOT0 + (i & 1)
        consumer.spin_until_eq("h", HEAD, i + 1, acquire=correct)
        consumer.pull(slot)
        consumer.load(f"got{i}", slot)
        consumer.push(slot)
        consumer.store(TAIL, i + 1, release=correct, space=MemSpace.SYNC)

    return build_program(
        [producer, consumer],
        observed={1: [f"got{i}" for i in range(len(ITEMS))]},
        initial_memory={HEAD: 0, TAIL: 0, SLOT0: 0, SLOT1: 0},
        spaces={HEAD: MemSpace.SYNC, TAIL: MemSpace.SYNC},
        name=f"spsc-ring[{'rel-acq' if correct else 'plain'}]",
    )


def main() -> None:
    print("A kernel module the paper never verified: an SPSC ring buffer")
    print("=" * 72)

    for correct in (False, True):
        program = ring_buffer_program(correct)
        print(f"\n--- {program.name} ---")
        comparison = compare_models(program)
        print(comparison.describe())
        drf = check_drf_kernel(program, shared_locs=[SLOT0, SLOT1])
        nbm = check_no_barrier_misuse(program, shared_locs=[SLOT0, SLOT1])
        theorem = check_theorem2(program)
        print(f"DRF-Kernel: {'ok' if drf.holds else 'VIOLATED'}   "
              f"No-Barrier-Misuse: {'ok' if nbm.holds else 'VIOLATED'}   "
              f"RM⊆SC: {'ok' if theorem.holds else 'FAILS'}")
        verdict = (
            "VERIFIED — release/acquire publication makes every slot "
            "handoff sound on Arm"
            if drf.verified and nbm.verified and theorem.verified
            else "REJECTED — this code would lose data on Arm hardware"
        )
        print(verdict)

    print("\nHow the plain variant loses data on relaxed hardware:")
    buggy = ring_buffer_program(correct=False)
    trace = explain_outcome(buggy, PROMISING_ARM, t1_got0=0)
    if trace is not None:
        print(trace.render())
        print("\nThe HEAD publication was promised ahead of the slot write;")
        print("the consumer legitimately observed it and read an empty slot.")


if __name__ == "__main__":
    main()
