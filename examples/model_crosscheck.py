#!/usr/bin/env python3
"""Cross-check the operational and axiomatic Armv8 models.

The paper's soundness chain bottoms out in the proven equivalence of the
Promising Arm operational model and the Armv8 axiomatic model.  This
example reproduces a slice of that equivalence empirically: for every
eligible litmus program (and a batch of random ones) the two independent
implementations in this repository must produce identical behavior sets.

Run: ``python examples/model_crosscheck.py``
"""

from repro.litmus import classic_corpus, extended_corpus
from repro.litmus.generate import GeneratorConfig, random_program
from repro.memory import explore_promising
from repro.memory.axiomatic import axiomatic_outcomes, eligible


def outcomes_operational(program):
    result = explore_promising(
        program, observe_locs=sorted(program.initial_memory)
    )
    return {(b.registers, b.memory) for b in result.behaviors}


def main() -> None:
    print("Operational (Promising Arm) vs axiomatic Armv8 — behavior sets")
    print("=" * 72)
    matched = mismatched = 0
    for test in classic_corpus() + extended_corpus():
        if not eligible(test.program):
            continue
        ax = axiomatic_outcomes(test.program)
        op = outcomes_operational(test.program)
        status = "MATCH" if ax == op else "MISMATCH"
        if ax == op:
            matched += 1
        else:
            mismatched += 1
        print(f"  {test.name:<20} {len(op):3} behaviors  {status}")
    print(f"curated corpus: {matched} matches, {mismatched} mismatches")
    print()

    print("Randomized programs (seeded):")
    cfg = GeneratorConfig(n_threads=2, min_ops=2, max_ops=3)
    random_matched = skipped = 0
    for seed in range(60):
        program = random_program(seed, cfg)
        if not eligible(program):
            skipped += 1
            continue
        assert axiomatic_outcomes(program) == outcomes_operational(program), (
            f"seed {seed} disagrees!"
        )
        random_matched += 1
    print(f"  {random_matched} random programs agree exactly "
          f"({skipped} skipped: atomics are operational-only)")
    print()
    print("Two independent implementations of Armv8 concurrency — one")
    print("operational with promises, one axiomatic over rf/co candidate")
    print("executions — computing identical behavior sets is the empirical")
    print("counterpart of the equivalence theorem VRM builds on.")


if __name__ == "__main__":
    main()
