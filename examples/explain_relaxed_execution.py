#!/usr/bin/env python3
"""Explain *how* relaxed hardware produces a forbidden-on-SC outcome.

Takes the paper's Example 3 (the vCPU context-switch bug) and Example 1
(out-of-order writes), asks the Promising Arm explorer for a concrete
execution reaching the buggy outcome, and renders it Figure-3 style:
the step sequence with promises/fulfillments plus the global timeline.

Run: ``python examples/explain_relaxed_execution.py``
"""

from repro.litmus import example3_vcpu
from repro.ir import ThreadBuilder, build_program
from repro.memory import explain_outcome
from repro.memory.semantics import PROMISING_ARM, SC

X, Y = 0x100, 0x200


def main() -> None:
    print("Example 1 — out-of-order write (load buffering)")
    print("=" * 72)
    t0 = ThreadBuilder(0)
    t0.load("r0", X).store(Y, 1)
    t1 = ThreadBuilder(1)
    t1.load("r1", Y).store(X, "r1")
    program = build_program(
        [t0, t1], observed={0: ["r0"], 1: ["r1"]},
        initial_memory={X: 0, Y: 0}, name="Example1",
    )
    trace = explain_outcome(program, PROMISING_ARM, t0_r0=1, t1_r1=1)
    assert trace is not None
    print(trace.render())
    print()
    print("On the SC model the same outcome is unreachable:",
          explain_outcome(program, SC, t0_r0=1, t1_r1=1))
    print()

    print("Example 3 — stale vCPU context restored")
    print("=" * 72)
    program = example3_vcpu(correct=False)
    trace = explain_outcome(program, PROMISING_ARM, t1_restored=0)
    assert trace is not None
    print(trace.render())
    print()
    print("The INACTIVE store is *promised* before the context save is")
    print("globally visible; CPU 1 legitimately observes it, claims the")
    print("vCPU, and restores a context that was never saved — exactly")
    print("the reordering the release/acquire fix forbids.")
    fixed = example3_vcpu(correct=True)
    print("\nWith the fix, the outcome is unreachable on relaxed hardware:",
          explain_outcome(fixed, PROMISING_ARM, t1_restored=0))


if __name__ == "__main__":
    main()
