"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
``pip install -e .`` works on offline machines whose pip/setuptools lack
the ``wheel`` package required by the PEP-517 editable path.
"""

from setuptools import setup

setup()
