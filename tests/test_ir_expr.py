"""Unit tests for operand expressions (repro.ir.expr)."""

import pytest

from repro.errors import ProgramError
from repro.ir.expr import BinOp, Imm, Reg, coerce, registers_of


class TestImm:
    def test_eval_constant(self):
        assert Imm(42).eval({}) == 42

    def test_no_registers(self):
        assert Imm(7).registers() == frozenset()

    def test_repr(self):
        assert repr(Imm(3)) == "#3"


class TestReg:
    def test_eval_reads_regfile(self):
        assert Reg("r0").eval({"r0": 9}) == 9

    def test_unwritten_register_raises(self):
        with pytest.raises(ProgramError):
            Reg("r9").eval({"r0": 1})

    def test_registers(self):
        assert Reg("r1").registers() == frozenset({"r1"})


class TestBinOp:
    def test_add(self):
        expr = Reg("a") + 3
        assert expr.eval({"a": 4}) == 7

    def test_sub_and_rsub(self):
        assert (Reg("a") - 1).eval({"a": 5}) == 4
        assert (10 - Reg("a")).eval({"a": 4}) == 6

    def test_mul(self):
        assert (Reg("a") * 3).eval({"a": 2}) == 6

    def test_comparison_lt(self):
        expr = Reg("a") < 5
        assert expr.eval({"a": 3}) == 1
        assert expr.eval({"a": 7}) == 0

    def test_comparison_ge(self):
        expr = Reg("a") >= 5
        assert expr.eval({"a": 5}) == 1
        assert expr.eval({"a": 4}) == 0

    def test_value_equality_via_eq_method(self):
        expr = Reg("a").eq(2)
        assert expr.eval({"a": 2}) == 1
        assert expr.eval({"a": 3}) == 0

    def test_value_inequality_via_ne_method(self):
        expr = Reg("a").ne(2)
        assert expr.eval({"a": 2}) == 0
        assert expr.eval({"a": 3}) == 1

    def test_python_eq_stays_structural(self):
        # ``==`` must NOT build an expression: dataclass equality.
        assert (Reg("a") == Reg("a")) is True
        assert (Reg("a") == Reg("b")) is False

    def test_registers_union(self):
        expr = Reg("a") + Reg("b") * 2
        assert expr.registers() == frozenset({"a", "b"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ProgramError):
            BinOp("**", Imm(1), Imm(2))

    def test_nested_expression(self):
        expr = (Reg("a") + 1) * (Reg("b") - 1)
        assert expr.eval({"a": 2, "b": 4}) == 9

    def test_bitwise_ops(self):
        assert BinOp("&", Imm(6), Imm(3)).eval({}) == 2
        assert BinOp("|", Imm(4), Imm(1)).eval({}) == 5
        assert BinOp(">>", Imm(8), Imm(2)).eval({}) == 2
        assert BinOp("<<", Imm(1), Imm(3)).eval({}) == 8
        assert BinOp("%", Imm(7), Imm(3)).eval({}) == 1
        assert BinOp("//", Imm(7), Imm(2)).eval({}) == 3


class TestCoerce:
    def test_int_becomes_imm(self):
        assert coerce(5) == Imm(5)

    def test_bool_normalized_to_imm(self):
        assert coerce(True) == Imm(1)

    def test_str_becomes_reg(self):
        assert coerce("r0") == Reg("r0")

    def test_expr_passthrough(self):
        expr = Reg("x") + 1
        assert coerce(expr) is expr

    def test_bad_operand_rejected(self):
        with pytest.raises(ProgramError):
            coerce(3.14)


def test_registers_of_sorted_union():
    assert registers_of(Reg("b") + Reg("a"), Imm(1)) == ("a", "b")
