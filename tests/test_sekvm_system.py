"""Integration tests for KCore + KServ: hypercalls, boot, security."""

import pytest

from repro.errors import HypercallError, KernelPanic, SecurityViolation
from repro.sekvm import (
    KSERV,
    SeKVMSystem,
    all_attacks_refused,
    check_vm_confidentiality,
    check_vm_integrity,
    KVMVersion,
    make_image,
    run_attack_battery,
)
from repro.sekvm.vm import MAX_VM


@pytest.fixture
def system():
    return SeKVMSystem(total_pages=128, cpus=8)


class TestVMLifecycle:
    def test_boot_authenticated_image(self, system):
        image, _ = make_image(10, 20, 30)
        vmid = system.boot_vm(image, vcpus=2)
        assert [system.guest_read(vmid, v) for v in range(3)] == [10, 20, 30]

    def test_vmids_unique_and_sequential(self, system):
        image, _ = make_image(1)
        ids = [system.boot_vm(image) for _ in range(3)]
        assert len(set(ids)) == 3

    def test_gen_vmid_panics_at_max(self, system):
        system.kcore.next_vmid = MAX_VM
        with pytest.raises(KernelPanic):
            system.kcore.gen_vmid(cpu=0)

    def test_tampered_image_refused(self, system):
        with pytest.raises(HypercallError):
            system.kserv.create_and_boot_vm(
                0, image=[1, 2, 3], tamper={0: 99}
            )

    def test_guest_writes_visible_to_guest_only(self, system):
        image, _ = make_image(1)
        vmid = system.boot_vm(image, vcpus=1)
        system.run_guest_work(vmid, 0, cpu=2, writes={0x30: 777})
        assert system.guest_read(vmid, 0x30) == 777
        pfn = system.kcore.vms[vmid].s2pt.translate(0x30)
        assert not system.kserv.try_map_foreign_page(0, pfn)

    def test_teardown_scrubs_and_returns_pages(self, system):
        image, _ = make_image(5, 6)
        vmid = system.boot_vm(image)
        pfns = system.vm_pages(vmid)
        reclaimed = system.teardown_vm(vmid)
        assert reclaimed == len(pfns)
        for pfn in pfns:
            assert system.kcore.s2page.owner_of(pfn) == KSERV
            assert system.memory.read(pfn) == 0   # scrubbed

    def test_vcpu_run_protocol_enforced(self, system):
        image, _ = make_image(1)
        vmid = system.boot_vm(image, vcpus=1)
        system.kcore.run_vcpu(cpu=1, vmid=vmid, vcpu_id=0)
        with pytest.raises(KernelPanic):
            system.kcore.run_vcpu(cpu=2, vmid=vmid, vcpu_id=0)
        system.kcore.stop_vcpu(cpu=1, vmid=vmid, vcpu_id=0)
        system.kcore.run_vcpu(cpu=2, vmid=vmid, vcpu_id=0)
        system.kcore.stop_vcpu(cpu=2, vmid=vmid, vcpu_id=0)


class TestKServMediation:
    def test_kserv_access_through_stage2_only(self, system):
        pfn = system.kserv.alloc_page()
        vpn = system.kserv.map_and_write(0, pfn, 0xAB)
        assert system.kcore.kserv_read(vpn) == 0xAB
        system.kcore.unmap_pfn_kserv(0, vpn)
        with pytest.raises(HypercallError):
            system.kcore.kserv_read(vpn)

    def test_kserv_cannot_map_unowned_page(self, system):
        image, _ = make_image(1)
        vmid = system.boot_vm(image)
        vm_pfn = system.vm_pages(vmid)[0]
        with pytest.raises(HypercallError):
            system.kcore.map_pfn_kserv(0, vpn=0x99, pfn=vm_pfn)

    def test_kcore_reads_user_via_oracle(self, system):
        value = system.kcore.kcore_read_user("snapshot")
        assert system.kcore.oracle_reads == [("snapshot", value)]

    def test_grant_vm_page_scrubs_kserv_data(self, system):
        image, _ = make_image(1)
        vmid = system.boot_vm(image, vcpus=1)
        pfn = system.kserv.alloc_page()
        system.memory.write(pfn, 0xDEAD)   # KServ secret
        system.kcore.run_vcpu(0, vmid, 0)
        system.kcore.grant_vm_page(0, vmid, vpn=0x40, pfn=pfn)
        system.kcore.stop_vcpu(0, vmid, 0)
        assert system.guest_read(vmid, 0x40) == 0   # scrubbed at donation


class TestSecurityProperties:
    def test_confidentiality_noninterference(self):
        assert check_vm_confidentiality()

    def test_integrity_under_attack(self):
        assert check_vm_integrity()

    def test_attack_battery_all_refused(self):
        results = run_attack_battery()
        assert len(results) >= 6
        for attack in results:
            assert not attack.succeeded, attack.name
        assert all_attacks_refused()

    def test_smmu_protects_vm_pages_from_dma(self, system):
        image, _ = make_image(1)
        vmid = system.boot_vm(image)
        vm_pfn = system.vm_pages(vmid)[0]
        assert not system.kserv.try_dma_attack(0, device_id=5, pfn=vm_pfn)

    def test_security_holds_for_3_level_version(self):
        version = KVMVersion(linux="5.4", s2_levels=3)
        assert check_vm_confidentiality(version)
        assert check_vm_integrity(version)
        assert all_attacks_refused(version)

    def test_exclusive_ownership_invariant(self, system):
        image, _ = make_image(1, 2)
        vmid = system.boot_vm(image)
        system.kcore.s2page.audit_exclusive_ownership()
        system.teardown_vm(vmid)
        system.kcore.s2page.audit_exclusive_ownership()
