"""Docstring-coverage lint for the user-facing packages.

The observability layer (``repro.obs``), the verifier (``repro.vrm``),
and the conformance harness (``repro.conformance``) are the packages
users read first — their public surface must be self-describing.  This
lint walks each module's AST and fails if any public module, class,
function, or method lacks a docstring.

"Public" means: not prefixed with ``_``, not a dunder other than
``__init__`` (which may rely on its class docstring), and not nested
inside a function.  Keep the scope list in sync with
``docs/OBSERVABILITY.md`` when adding packages.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"

#: Packages under the lint.  Extend deliberately: adding a package here
#: is a commitment that its public API stays documented.
LINTED_PACKAGES = ("obs", "vrm", "conformance")


def _module_files():
    for package in LINTED_PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            yield path


def _is_public(name: str) -> bool:
    if name == "__init__":
        return False  # covered by the class docstring
    return not name.startswith("_")


def _missing_in(tree: ast.Module, relpath: str):
    """Yield ``path:line name`` for every undocumented public def."""
    if ast.get_docstring(tree) is None:
        yield f"{relpath}:1 <module>"
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                yield f"{relpath}:{node.lineno} class {node.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                yield f"{relpath}:{node.lineno} def {node.name}"


def test_linted_packages_exist():
    """Guard against the scope list silently rotting after a rename."""
    for package in LINTED_PACKAGES:
        assert (SRC / package / "__init__.py").exists(), package


@pytest.mark.parametrize(
    "path", list(_module_files()), ids=lambda p: str(p.relative_to(SRC))
)
def test_public_api_has_docstrings(path):
    relpath = str(path.relative_to(SRC.parent.parent))
    tree = ast.parse(path.read_text())
    missing = list(_missing_in(tree, relpath))
    assert not missing, (
        "public definitions without docstrings:\n  " + "\n  ".join(missing)
    )
