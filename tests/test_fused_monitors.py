"""Streaming monitors and fused wDRF verification passes.

The invariants: fusion and early exit may change cost, never verdicts —
fused reports are bit-identical to per-condition ones (the
``REPRO_FUSE_CHECK`` contract), monitor-cut searches are cheaper but
still definitive, and the pass planner collapses the standard spec to
at most two explorations."""

import pytest

from repro.ir import Reg, ThreadBuilder, build_program
from repro.memory import ModelConfig, explore, explore_or_raise
from repro.memory.datatypes import ExplorationMonitor
from repro.memory.pushpull import pushpull_config
from repro.sekvm.ir_programs import kcore_buggy_cases, kcore_verified_cases
from repro.sekvm.locks import LockAddrs, emit_acquire, emit_release
from repro.vrm import WDRFSpec, plan_passes, verify_wdrf
from repro.vrm.drf_kernel import DRFKernelMonitor
from repro.vrm.verifier import VerifyStats

LOCK = LockAddrs(ticket=0x10, now=0x11)
COUNTER = 0x20
X = 0x30


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    """Every exploration in these tests must actually run."""
    monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")
    monkeypatch.setenv("REPRO_EXPLORE_MEMO", "0")


def locked_counter_spec(correct=True):
    threads = []
    for tid in range(2):
        b = ThreadBuilder(tid)
        emit_acquire(b, LOCK, protects=[COUNTER], correct=correct)
        b.load("v", COUNTER)
        b.store(COUNTER, Reg("v") + 1)
        emit_release(b, LOCK, protects=[COUNTER], correct=correct)
        threads.append(b)
    init = dict(LOCK.initial_memory())
    init[COUNTER] = 0
    program = build_program(
        threads,
        observed={tid: ["v"] for tid in range(2)},
        initial_memory=init,
        name="locked_counter" if correct else "broken_counter",
    )
    return WDRFSpec(program=program, shared_locs=(COUNTER,))


def sekvm_spec_corpus():
    cases = list(kcore_verified_cases(4))[:2] + list(kcore_buggy_cases(4))[:2]
    return [(case.name, case.spec) for case in cases]


class TestFusedBitIdentity:
    @pytest.mark.parametrize(
        "name,spec",
        sekvm_spec_corpus() + [
            ("locked_counter", locked_counter_spec(True)),
            ("broken_counter", locked_counter_spec(False)),
        ],
    )
    def test_fused_equals_per_condition(self, name, spec):
        fused = verify_wdrf(spec, fuse=True)
        unfused = verify_wdrf(spec, fuse=False)
        assert fused == unfused, name

    def test_fuse_check_mode_passes(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSE_CHECK", "1")
        report = verify_wdrf(locked_counter_spec(False))
        assert not report.all_hold  # the broken lock is still caught


class TestPassPlanner:
    def test_drf_and_barrier_share_a_pass(self):
        units = plan_passes(locked_counter_spec(), fuse=True)
        assert ("drf_kernel", "no_barrier_misuse") in units

    def test_unfused_is_six_singletons(self):
        units = plan_passes(locked_counter_spec(), fuse=False)
        assert len(units) == 6
        assert all(len(u) == 1 for u in units)

    def test_fused_spec_needs_at_most_two_explorations(self):
        for name, spec in sekvm_spec_corpus():
            stats = VerifyStats()
            verify_wdrf(spec, fuse=True, collect=stats)
            assert stats.explorations <= 2, name

    def test_fusion_explores_fewer_states(self):
        for correct in (True, False):
            spec = locked_counter_spec(correct)
            fused, unfused = VerifyStats(), VerifyStats()
            verify_wdrf(spec, fuse=True, collect=fused)
            verify_wdrf(spec, fuse=False, collect=unfused)
            assert fused.explorations < unfused.explorations
            assert fused.states_explored <= unfused.states_explored
            assert fused.fused_conditions >= 1


class TestEarlyExit:
    def test_monitor_stop_cuts_search(self):
        spec = locked_counter_spec(correct=False)
        cfg = pushpull_config(
            relaxed=True, owned_access_required=frozenset(spec.shared_locs)
        )
        full = explore(spec.program, cfg, observe_locs=[])
        monitor = DRFKernelMonitor()
        cut = explore(spec.program, cfg, observe_locs=[], monitors=[monitor])
        assert monitor.stopped and monitor.violations
        assert cut.stopped_early
        assert cut.complete  # a chosen exit, not a budget cut
        assert cut.states_explored < full.states_explored

    def test_clean_program_never_stops_early(self):
        spec = locked_counter_spec(correct=True)
        cfg = pushpull_config(
            relaxed=True, owned_access_required=frozenset(spec.shared_locs)
        )
        monitor = DRFKernelMonitor()
        result = explore(
            spec.program, cfg, observe_locs=[], monitors=[monitor]
        )
        assert not monitor.stopped and not result.stopped_early
        assert monitor.states_seen <= result.states_explored

    def test_stopped_early_passes_the_raising_wrapper(self):
        spec = locked_counter_spec(correct=False)
        cfg = pushpull_config(
            relaxed=True, owned_access_required=frozenset(spec.shared_locs)
        )
        result = explore_or_raise(
            spec.program, cfg, observe_locs=[], monitors=[DRFKernelMonitor()]
        )
        assert result.stopped_early  # complete, so no raise

    def test_monitor_cut_off_is_exhaustive_with_frozen_verdict(self):
        """Legacy mode: the search runs to exhaustion, but a stopped
        monitor's counters freeze at the same point as in cut mode."""
        spec = locked_counter_spec(correct=False)
        cfg = pushpull_config(
            relaxed=True, owned_access_required=frozenset(spec.shared_locs)
        )
        cut_monitor = DRFKernelMonitor()
        cut = explore(
            spec.program, cfg, observe_locs=[], monitors=[cut_monitor]
        )
        full_monitor = DRFKernelMonitor()
        full = explore(
            spec.program, cfg, observe_locs=[],
            monitors=[full_monitor], monitor_cut=False,
        )
        assert not full.stopped_early
        assert full.states_explored > cut.states_explored
        assert full_monitor.snapshot() == cut_monitor.snapshot()

    def test_unfused_verify_is_exhaustive(self):
        """``fuse=False`` is the legacy pipeline: per-condition passes
        with no early exit, so a buggy spec costs strictly more there."""
        spec = locked_counter_spec(correct=False)
        fused, unfused = VerifyStats(), VerifyStats()
        verify_wdrf(spec, fuse=True, collect=fused)
        verify_wdrf(spec, fuse=False, collect=unfused)
        assert fused.stopped_early >= 1
        assert unfused.stopped_early == 0
        assert unfused.states_explored > fused.states_explored


class TestExploreForwarding:
    def test_keep_terminal_states_is_forwarded(self):
        b = ThreadBuilder(0)
        b.store(X, 1)
        program = build_program([b], initial_memory={X: 0})
        result = explore_or_raise(
            program, ModelConfig(relaxed=False), keep_terminal_states=True
        )
        assert result.terminal_states

    def test_por_flag_is_forwarded(self):
        b = ThreadBuilder(0)
        b.store(X, 1)
        program = build_program([b], initial_memory={X: 0})
        por_on = explore_or_raise(program, ModelConfig(relaxed=False), por=True)
        por_off = explore_or_raise(
            program, ModelConfig(relaxed=False), por=False
        )
        assert por_on.behaviors == por_off.behaviors


class TestPORGate:
    def test_small_sc_program_skips_plan(self):
        b = ThreadBuilder(0)
        b.store(X, 1)
        program = build_program([b], initial_memory={X: 0})
        result = explore(program, ModelConfig(relaxed=False), por=True)
        assert result.stats.por_gate_skips == 1
        assert result.stats.por_ample_hits == 0

    def test_large_sc_program_still_reduces(self):
        threads = []
        for tid in range(2):
            b = ThreadBuilder(tid)
            for _ in range(8):
                b.mov("r0", 1)
            b.store(X + tid, 1).load("r1", X + tid)
            threads.append(b)
        program = build_program(
            [threads[0], threads[1]],
            initial_memory={X: 0, X + 1: 0},
        )
        result = explore(program, ModelConfig(relaxed=False), por=True)
        assert result.stats.por_gate_skips == 0
        assert result.stats.por_ample_hits > 0

    def test_relaxed_is_never_gated(self):
        b = ThreadBuilder(0)
        b.store(X, 1)
        program = build_program([b], initial_memory={X: 0})
        result = explore(program, ModelConfig(relaxed=True), por=True)
        assert result.stats.por_gate_skips == 0
