"""Tests for VM snapshots (the Weak-Memory-Isolation workload, §4.3)."""

import pytest

from repro.errors import HypercallError, SecurityViolation
from repro.sekvm import SeKVMSystem, make_image
from repro.sekvm.snapshot import SealedSnapshot, SnapshotManager


@pytest.fixture
def booted():
    system = SeKVMSystem(total_pages=128)
    image, _ = make_image(11, 22, 33)
    vmid = system.boot_vm(image, vcpus=1)
    system.run_guest_work(vmid, 0, cpu=1, writes={0x20: 777})
    return system, vmid, SnapshotManager(system.kcore)


class TestSnapshot:
    def test_roundtrip_restores_exact_state(self, booted):
        system, vmid, mgr = booted
        snap = mgr.snapshot_vm(0, vmid)
        # Clobber guest memory, then restore.
        system.run_guest_work(vmid, 0, cpu=1, writes={0x20: 0, 1: 0})
        restored = mgr.restore_vm(0, snap, system.kserv.alloc_page)
        assert restored == len(snap.pages)
        assert system.guest_read(vmid, 0) == 11
        assert system.guest_read(vmid, 1) == 22
        assert system.guest_read(vmid, 0x20) == 777

    def test_snapshot_is_sealed(self, booted):
        """KServ holding the blob learns nothing: the sealed words differ
        from the plaintext and two VMs' seals differ for equal content."""
        system, vmid, mgr = booted
        snap = mgr.snapshot_vm(0, vmid)
        plain = {vpn: system.guest_read(vmid, vpn) for vpn, _ in snap.pages}
        sealed = dict(snap.pages)
        assert any(sealed[vpn] != plain[vpn] for vpn in plain)

    def test_seal_differs_across_vms(self):
        system = SeKVMSystem(total_pages=128)
        image, _ = make_image(5)
        a = system.boot_vm(image)
        b = system.boot_vm(image)
        mgr = SnapshotManager(system.kcore)
        sa = dict(mgr.snapshot_vm(0, a).pages)
        sb = dict(mgr.snapshot_vm(0, b).pages)
        assert sa[0] != sb[0]   # same plaintext, different per-VM keys

    def test_tampered_snapshot_refused(self, booted):
        system, vmid, mgr = booted
        snap = mgr.snapshot_vm(0, vmid)
        pages = list(snap.pages)
        pages[0] = (pages[0][0], pages[0][1] ^ 1)
        forged = SealedSnapshot(
            vmid=snap.vmid, generation=snap.generation,
            pages=tuple(pages), tag=snap.tag,
        )
        with pytest.raises(SecurityViolation):
            mgr.restore_vm(0, forged, system.kserv.alloc_page)
        assert system.guest_read(vmid, 0) == 11  # nothing written

    def test_reads_accounted_as_oracle_draws(self, booted):
        system, vmid, mgr = booted
        before = len(system.kcore.oracle_reads)
        snap = mgr.snapshot_vm(0, vmid)
        accounted = system.kcore.oracle_reads[before:]
        assert len(accounted) == len(snap.pages)
        assert all("snapshot" in what for what, _ in accounted)

    def test_unknown_vm_rejected(self, booted):
        system, _, mgr = booted
        with pytest.raises(HypercallError):
            mgr.snapshot_vm(0, 99)

    def test_generations_increase(self, booted):
        _, vmid, mgr = booted
        assert mgr.snapshot_vm(0, vmid).generation == 1
        assert mgr.snapshot_vm(0, vmid).generation == 2
