"""Behavioral tests for the SC and Promising Arm executors.

These pin the model to the Armv8-allowed outcomes: the relaxed model
must admit exactly the architecture's relaxed behaviors (stale reads,
promoted stores) and forbid coherence/dependency/barrier violations; the
SC model must be strictly interleaving-only.
"""

import pytest

from repro.ir import MemSpace, Reg, ThreadBuilder, build_program
from repro.memory import (
    ModelConfig,
    admits,
    compare_models,
    explore,
    explore_promising,
    explore_sc,
)

X, Y, Z = 0x100, 0x200, 0x300


def two_thread(t0, t1, observed, init, name="p"):
    return build_program([t0, t1], observed=observed, initial_memory=init,
                         name=name)


class TestSCModel:
    def test_single_thread_deterministic(self):
        b = ThreadBuilder(0)
        b.store(X, 1).load("r0", X)
        p = build_program([b], observed={0: ["r0"]}, initial_memory={X: 0})
        res = explore_sc(p)
        assert res.behaviors == {
            next(iter(res.behaviors))
        }  # exactly one behavior
        assert admits(res, t0_r0=1)

    def test_reads_are_latest(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).load("r0", X)
        t1 = ThreadBuilder(1)
        t1.store(X, 2)
        p = two_thread(t0, t1, {0: ["r0"]}, {X: 0})
        res = explore_sc(p)
        # r0 is 1 or 2 depending on interleaving, never 0 (own store first).
        assert admits(res, t0_r0=1)
        assert admits(res, t0_r0=2)
        assert not admits(res, t0_r0=0)

    def test_interleavings_complete(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1)
        t1 = ThreadBuilder(1)
        t1.load("r0", X)
        p = two_thread(t0, t1, {1: ["r0"]}, {X: 0})
        res = explore_sc(p)
        assert res.complete
        assert admits(res, t1_r0=0)
        assert admits(res, t1_r0=1)


class TestPromisingRelaxedBehaviors:
    def test_store_buffering_allowed(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).load("r0", Y)
        t1 = ThreadBuilder(1)
        t1.store(Y, 1).load("r1", X)
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0})
        assert admits(explore_promising(p), t0_r0=0, t1_r1=0)
        assert not admits(explore_sc(p), t0_r0=0, t1_r1=0)

    def test_message_passing_stale_read_allowed(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).store(Y, 1)
        t1 = ThreadBuilder(1)
        t1.load("r0", Y).load("r1", X)
        p = two_thread(t0, t1, {1: ["r0", "r1"]}, {X: 0, Y: 0})
        assert admits(explore_promising(p), t1_r0=1, t1_r1=0)

    def test_release_acquire_forbids_stale(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).store(Y, 1, release=True)
        t1 = ThreadBuilder(1)
        t1.load("r0", Y, acquire=True).load("r1", X)
        p = two_thread(t0, t1, {1: ["r0", "r1"]}, {X: 0, Y: 0})
        assert not admits(explore_promising(p), t1_r0=1, t1_r1=0)

    def test_load_buffering_via_promises(self):
        t0 = ThreadBuilder(0)
        t0.load("r0", X).store(Y, 1)
        t1 = ThreadBuilder(1)
        t1.load("r1", Y).store(X, "r1")
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0})
        assert admits(explore_promising(p), t0_r0=1, t1_r1=1)

    def test_no_out_of_thin_air(self):
        # Data dependency on both sides: values cannot appear from nowhere.
        t0 = ThreadBuilder(0)
        t0.load("r0", X).store(Y, "r0")
        t1 = ThreadBuilder(1)
        t1.load("r1", Y).store(X, "r1")
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0})
        res = explore_promising(p)
        assert not admits(res, t0_r0=1)
        assert not admits(res, t1_r1=1)

    def test_coherence_read_read(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1)
        t1 = ThreadBuilder(1)
        t1.load("r0", X).load("r1", X)
        p = two_thread(t0, t1, {1: ["r0", "r1"]}, {X: 0})
        assert not admits(explore_promising(p), t1_r0=1, t1_r1=0)

    def test_own_writes_respected(self):
        b = ThreadBuilder(0)
        b.store(X, 1).store(X, 2).load("r0", X)
        t1 = ThreadBuilder(1)
        t1.nop()
        p = two_thread(b, t1, {0: ["r0"]}, {X: 0})
        res = explore_promising(p)
        assert admits(res, t0_r0=2)
        assert not admits(res, t0_r0=1)
        assert not admits(res, t0_r0=0)

    def test_dmb_full_restores_sc_for_sb(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).barrier("full").load("r0", Y)
        t1 = ThreadBuilder(1)
        t1.store(Y, 1).barrier("full").load("r1", X)
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0})
        assert not admits(explore_promising(p), t0_r0=0, t1_r1=0)

    def test_isb_after_ctrl_orders_loads(self):
        # LB shape with ctrl+isb on both load->load paths is forbidden;
        # without ISB a load may still run ahead of the branch.
        def program(with_isb):
            t0 = ThreadBuilder(0)
            t0.load("r0", X).store(Y, 1)
            t1 = ThreadBuilder(1)
            skip = t1.fresh_label("skip")
            t1.load("r1", Y)
            t1.bz(Reg("r1"), skip)
            if with_isb:
                t1.barrier("isb")
            t1.load("r2", X)
            t1.label(skip)
            return two_thread(t0, t1, {1: ["r1", "r2"]}, {X: 0, Y: 0})

        # Writer T0 stores Y=1 only po-after loading X; with promises T0
        # can promote the store.  T1 observes Y=1, branch-taken, then
        # reads X: without ISB the read may be stale vs T0's... this
        # shape needs a second write to X to distinguish; use MP+ctrl.
        t0 = ThreadBuilder(0)
        t0.store(X, 1).barrier("st").store(Y, 1)
        for with_isb, expected_stale in ((False, True), (True, False)):
            t1 = ThreadBuilder(1)
            skip = t1.fresh_label("skip")
            t1.load("r1", Y)
            t1.bz(Reg("r1"), skip)
            if with_isb:
                t1.barrier("isb")
            t1.load("r2", X)
            t1.label(skip)
            p = two_thread(t0, t1, {1: ["r1", "r2"]}, {X: 0, Y: 0})
            stale = admits(explore_promising(p), t1_r1=1, t1_r2=0)
            assert stale == expected_stale, f"isb={with_isb}"


class TestTSOModel:
    """The x86-TSO store-buffer executor: forwarding, fences, and the
    classic verdict table that separates it from both neighbors in the
    model portfolio (SC below, Promising Arm above)."""

    #: (catalog test, allowed on SC, on TSO, on relaxed Arm).  Only the
    #: store→load reordering of SB/R is TSO-observable; MP and LB stay
    #: forbidden because TSO preserves store→store and load→load order,
    #: and IRIW stays forbidden because a single shared memory order
    #: makes TSO multi-copy atomic — the relaxed Arm model is the only
    #: portfolio member that admits it.
    VERDICTS = [
        ("SB", False, True, True),
        ("R", False, True, True),
        ("MP", False, False, True),
        ("LB", False, False, True),
        ("S+data", False, False, True),
        ("2+2W", False, False, True),
        ("IRIW", False, False, True),
        ("SB+dmbs", False, False, False),
        ("MP+rel-acq", False, False, False),
        ("CoWW", False, False, False),
    ]

    @pytest.mark.parametrize(
        "name,sc,tso,arm", VERDICTS, ids=[row[0] for row in VERDICTS]
    )
    def test_classic_verdict_table(self, name, sc, tso, arm):
        from repro.litmus.catalog import full_corpus
        from repro.litmus.runner import run_litmus

        test = next(t for t in full_corpus() if t.name == name)
        outcome = run_litmus(test, model="tso")
        assert outcome.observed_sc == sc
        assert outcome.observed_tso == tso
        assert outcome.observed_rm == arm
        assert outcome.passed, outcome.describe()

    def test_store_forwarding_reads_own_buffered_write(self):
        from repro.memory import explore_tso

        t0 = ThreadBuilder(0)
        t0.store(X, 1).load("r0", X)
        t1 = ThreadBuilder(1)
        t1.nop()
        p = two_thread(t0, t1, {0: ["r0"]}, {X: 0})
        res = explore_tso(p)
        # The load must forward from the store buffer: never 0, even
        # though the store may still be unflushed when the load runs.
        assert admits(res, t0_r0=1)
        assert not admits(res, t0_r0=0)

    def test_buffered_store_invisible_to_other_threads(self):
        from repro.memory import explore_tso

        t0 = ThreadBuilder(0)
        t0.store(X, 1).load("r0", X)
        t1 = ThreadBuilder(1)
        t1.load("r1", X)
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0})
        res = explore_tso(p)
        # t1 may read 0 after t0's load returned 1 (buffered write not
        # yet globally visible) — the irreducibly non-SC TSO behavior.
        assert admits(res, t0_r0=1, t1_r1=0)

    def test_full_fence_drains_the_buffer(self):
        from repro.memory import explore_tso

        t0 = ThreadBuilder(0)
        t0.store(X, 1).barrier("full").load("r0", Y)
        t1 = ThreadBuilder(1)
        t1.store(Y, 1).barrier("full").load("r1", X)
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0})
        assert not admits(explore_tso(p), t0_r0=0, t1_r1=0)

    def test_terminal_states_have_drained_buffers(self):
        from repro.memory import explore_tso

        t0 = ThreadBuilder(0)
        t0.store(X, 1).store(Y, 2)
        t1 = ThreadBuilder(1)
        t1.nop()
        p = two_thread(t0, t1, {}, {X: 0, Y: 0})
        res = explore_tso(p, observe_locs=[X, Y])
        assert res.complete
        # Every final memory reflects both stores: a behavior with a
        # write stuck in the buffer would be a lost store.
        assert {dict(b.memory)[X] for b in res.behaviors} == {1}
        assert {dict(b.memory)[Y] for b in res.behaviors} == {2}


class TestAtomics:
    def test_faa_returns_unique_values(self):
        t0 = ThreadBuilder(0)
        t0.faa("r0", X)
        t1 = ThreadBuilder(1)
        t1.faa("r1", X)
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0})
        res = explore_promising(p)
        assert not admits(res, t0_r0=0, t1_r1=0)
        assert admits(res, t0_r0=0, t1_r1=1)
        assert admits(res, t0_r0=1, t1_r1=0)

    def test_faa_final_memory_value(self):
        t0 = ThreadBuilder(0)
        t0.faa("r0", X, amount=5)
        t1 = ThreadBuilder(1)
        t1.faa("r1", X, amount=3)
        p = two_thread(t0, t1, {}, {X: 0})
        res = explore_promising(p, observe_locs=[X])
        finals = {dict(b.memory)[X] for b in res.behaviors}
        assert finals == {8}


class TestComparisons:
    def test_sc_subset_of_rm(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).load("r0", Y)
        t1 = ThreadBuilder(1)
        t1.store(Y, 1).load("r1", X)
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0})
        cmp = compare_models(p)
        assert cmp.sc.behaviors <= cmp.rm.behaviors
        assert not cmp.equivalent
        assert cmp.rm_only
        assert "RM-only" in cmp.describe()

    def test_equivalence_for_barriered_code(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).barrier("full").load("r0", Y)
        t1 = ThreadBuilder(1)
        t1.store(Y, 1).barrier("full").load("r1", X)
        p = two_thread(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0})
        cmp = compare_models(p)
        assert cmp.equivalent
        assert cmp.complete


class TestExplorationMachinery:
    def test_spin_loop_terminates_via_dedup(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1, release=True)
        t1 = ThreadBuilder(1)
        t1.spin_until_eq("r", X, 1, acquire=True)
        p = two_thread(t0, t1, {1: ["r"]}, {X: 0})
        res = explore_promising(p)
        assert res.complete
        assert admits(res, t1_r=1)

    def test_max_states_budget_marks_incomplete(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).store(Y, 1).load("r0", X).load("r1", Y)
        t1 = ThreadBuilder(1)
        t1.store(X, 2).store(Y, 2).load("r2", X).load("r3", Y)
        p = two_thread(t0, t1, {}, {X: 0, Y: 0})
        res = explore(p, ModelConfig(relaxed=True, max_states=10))
        assert not res.complete

    def test_terminal_states_collected_on_request(self):
        b = ThreadBuilder(0)
        b.store(X, 1)
        t1 = ThreadBuilder(1)
        t1.nop()
        p = two_thread(b, t1, {}, {X: 0})
        res = explore(p, ModelConfig(relaxed=False), keep_terminal_states=True)
        assert res.terminal_states
        assert any(m.loc == X for s in res.terminal_states for m in s.memory)

    def test_panic_becomes_behavior(self):
        b = ThreadBuilder(0)
        b.panic("testing")
        t1 = ThreadBuilder(1)
        t1.nop()
        p = two_thread(b, t1, {}, {})
        res = explore_sc(p)
        assert "testing" in res.panics
        assert not res.panic_free

    def test_oracle_read_explores_choices(self):
        b = ThreadBuilder(0)
        b.oracle_read("r0", X, choices=(3, 4, 5))
        t1 = ThreadBuilder(1)
        t1.nop()
        p = two_thread(b, t1, {0: ["r0"]}, {})
        res = explore_sc(p)
        values = {dict(((t, r), v) for t, r, v in b2.registers)[(0, "r0")]
                  for b2 in res.behaviors}
        assert values == {3, 4, 5}
