"""Tests for the wDRF condition/report types and the DRF + barrier
checkers (conditions 1-2)."""

import pytest

from repro.ir import MemSpace, Reg, ThreadBuilder, build_program
from repro.sekvm.locks import LockAddrs, emit_acquire, emit_release
from repro.vrm import (
    ConditionResult,
    WDRFCondition,
    WDRFReport,
    check_drf_kernel,
    check_no_barrier_misuse,
    check_no_barrier_misuse_static,
)

LOCK = LockAddrs(ticket=0x10, now=0x11)
COUNTER = 0x20


def locked_counter_program(correct=True, instrumented=True, n_cpus=2):
    threads = []
    for tid in range(n_cpus):
        b = ThreadBuilder(tid)
        emit_acquire(
            b, LOCK, protects=[COUNTER] if instrumented else (),
            correct=correct,
        )
        b.load("v", COUNTER)
        b.store(COUNTER, Reg("v") + 1)
        emit_release(
            b, LOCK, protects=[COUNTER] if instrumented else (),
            correct=correct,
        )
        threads.append(b)
    init = dict(LOCK.initial_memory())
    init[COUNTER] = 0
    return build_program(
        threads,
        observed={tid: ["v"] for tid in range(n_cpus)},
        initial_memory=init,
        name="locked_counter",
    )


class TestConditionResult:
    def test_verified_requires_exhaustive(self):
        ok = ConditionResult(WDRFCondition.DRF_KERNEL, True, True)
        partial = ConditionResult(WDRFCondition.DRF_KERNEL, True, False)
        assert ok.verified and not partial.verified

    def test_describe_mentions_status(self):
        bad = ConditionResult(
            WDRFCondition.DRF_KERNEL, False, True, violations=("boom",)
        )
        assert "VIOLATED" in bad.describe()
        assert "boom" in bad.describe()


class TestWDRFReport:
    def _result(self, cond, holds=True):
        return ConditionResult(cond, holds, True)

    def test_all_verified_needs_every_condition(self):
        report = WDRFReport(subject="x", weakened=True)
        for cond in report.required_conditions():
            report.add(self._result(cond))
        assert report.all_verified

    def test_missing_condition_fails(self):
        report = WDRFReport(subject="x")
        assert not report.all_verified
        assert "NOT CHECKED" in report.describe()

    def test_weakened_selects_isolation_flavor(self):
        strong = WDRFReport(subject="x", weakened=False)
        weak = WDRFReport(subject="x", weakened=True)
        assert WDRFCondition.MEMORY_ISOLATION in strong.required_conditions()
        assert WDRFCondition.WEAK_MEMORY_ISOLATION in weak.required_conditions()


class TestDRFKernel:
    def test_correct_lock_verifies(self):
        result = check_drf_kernel(locked_counter_program(), [COUNTER])
        assert result.verified

    def test_missing_barriers_violate(self):
        result = check_drf_kernel(
            locked_counter_program(correct=False), [COUNTER]
        )
        assert not result.holds
        assert result.violations

    def test_uninstrumented_program_rejected(self):
        result = check_drf_kernel(
            locked_counter_program(instrumented=False), [COUNTER]
        )
        assert not result.holds
        assert "instrumentation" in result.violations[0]

    def test_no_shared_locations_trivially_holds(self):
        b = ThreadBuilder(0)
        b.mov("r0", 1)
        p = build_program([b])
        assert check_drf_kernel(p, []).holds


class TestNoBarrierMisuse:
    def test_correct_lock_verifies(self):
        result = check_no_barrier_misuse(locked_counter_program(), [COUNTER])
        assert result.verified

    def test_missing_barriers_caught_both_ways(self):
        result = check_no_barrier_misuse(
            locked_counter_program(correct=False), [COUNTER]
        )
        assert not result.holds
        reasons = " ".join(result.violations)
        assert "pull not preceded" in reasons          # static
        assert "No-Barrier-Misuse" in reasons          # dynamic

    def test_static_detects_missing_release(self):
        b = ThreadBuilder(0)
        b.faa("t", LOCK.ticket, acquire=True)
        b.spin_until_eq("n", LOCK.now, "t", acquire=True)
        b.pull(COUNTER)
        b.load("v", COUNTER)
        b.push(COUNTER)
        b.load("t2", LOCK.now, space=MemSpace.SYNC)
        b.store(LOCK.now, Reg("t2") + 1, release=False,
                space=MemSpace.SYNC)  # plain release!
        p = build_program([b], initial_memory={**LOCK.initial_memory(),
                                               COUNTER: 0})
        result = check_no_barrier_misuse_static(p)
        assert not result.holds
        assert "push not followed" in result.violations[0]

    def test_full_barrier_also_acceptable(self):
        b = ThreadBuilder(0)
        b.faa("t", LOCK.ticket)
        b.spin_until_eq("n", LOCK.now, "t")
        b.barrier("full")
        b.pull(COUNTER)
        b.load("v", COUNTER)
        b.push(COUNTER)
        b.barrier("full")
        b.load("t2", LOCK.now)
        b.store(LOCK.now, Reg("t2") + 1)
        p = build_program([b], initial_memory={**LOCK.initial_memory(),
                                               COUNTER: 0})
        assert check_no_barrier_misuse_static(p).holds
