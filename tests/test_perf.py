"""Tests for the evaluation substrate: machines, operation simulation,
workloads, and the Table 3 / Figure 8 / Figure 9 harnesses.

The quantitative assertions encode the paper's *shapes*: who wins, by
roughly what factor, and where the machine-dependent gaps appear.
"""

import pytest

from repro.perf import (
    APP_WORKLOADS,
    Hypervisor,
    M400,
    MICROBENCHMARKS,
    MultiVMSimulator,
    PAPER_TABLE3,
    SEATTLE,
    SimConfig,
    VCpuTask,
    VM_COUNTS,
    describe_table2,
    describe_table4,
    normalized_performance,
    overhead_ratio,
    run_figure8,
    run_figure9,
    run_table3,
    sekvm_vs_kvm_overhead,
    simulate_operation,
    simulate_scaling,
    workload_by_name,
)


class TestMachineModels:
    def test_m400_tlb_much_smaller(self):
        assert M400.tlb_entries * 4 <= SEATTLE.tlb_entries

    def test_nested_walk_costs_more_than_host(self):
        for machine in (M400, SEATTLE):
            assert machine.nested_miss_cost(4) > machine.host_miss_cost()

    def test_fewer_s2_levels_cheaper_refills(self):
        assert M400.nested_miss_cost(3) < M400.nested_miss_cost(4)


class TestOperationSimulation:
    @pytest.mark.parametrize("machine", [M400, SEATTLE], ids=lambda m: m.name)
    @pytest.mark.parametrize("op", [m.name for m in MICROBENCHMARKS])
    def test_sekvm_costs_more_than_kvm(self, machine, op):
        kvm = simulate_operation(
            SimConfig(machine=machine, hypervisor=Hypervisor.KVM), op
        )
        sekvm = simulate_operation(
            SimConfig(machine=machine, hypervisor=Hypervisor.SEKVM), op
        )
        assert sekvm > kvm

    def test_unknown_operation_rejected(self):
        from repro.errors import ReproError

        cfg = SimConfig(machine=M400, hypervisor=Hypervisor.KVM)
        with pytest.raises(ReproError):
            simulate_operation(cfg, "Bogus")

    def test_deterministic(self):
        cfg = SimConfig(machine=M400, hypervisor=Hypervisor.SEKVM)
        a = simulate_operation(cfg, "Hypercall")
        b = simulate_operation(cfg, "Hypercall")
        assert a == b


class TestTable3:
    CELLS = run_table3()

    def test_all_cells_present(self):
        assert len(self.CELLS) == 16

    def test_within_25_percent_of_paper(self):
        for cell in self.CELLS:
            assert 0.75 <= cell.ratio_to_paper <= 1.25, (
                f"{cell.operation}/{cell.machine}/{cell.hypervisor}: "
                f"{cell.cycles:.0f} vs paper {cell.paper_cycles}"
            )

    def test_m400_overhead_much_larger_than_seattle(self):
        """The paper's headline Table 3 observation: the tiny-TLB m400
        suffers ~2x SeKVM overhead; Seattle only ~1.2-1.3x."""
        for op in ("Hypercall", "I/O Kernel"):
            m400_ratio = overhead_ratio(self.CELLS, op, "m400")
            seattle_ratio = overhead_ratio(self.CELLS, op, "seattle")
            assert m400_ratio > 1.7, f"{op} m400 ratio {m400_ratio:.2f}"
            assert 1.1 < seattle_ratio < 1.45, (
                f"{op} seattle ratio {seattle_ratio:.2f}"
            )
            assert m400_ratio > seattle_ratio

    def test_format_contains_all_ops(self):
        from repro.perf import format_table3

        text = format_table3(self.CELLS)
        for op in ("Hypercall", "I/O Kernel", "I/O User", "Virtual IPI"):
            assert op in text


class TestFigure8:
    RESULTS = run_figure8()

    def test_all_series_present(self):
        # 5 workloads x 2 machines x 2 kernels x 2 hypervisors
        assert len(self.RESULTS) == 40

    def test_normalized_perf_below_native(self):
        for r in self.RESULTS:
            assert 0.5 < r.normalized_perf < 1.0

    def test_sekvm_within_10_percent_of_kvm(self):
        overheads = sekvm_vs_kvm_overhead(self.RESULTS)
        assert max(overheads.values()) < 0.10

    def test_compute_bound_beats_io_bound(self):
        perfs = {
            (r.workload, r.hypervisor): r.normalized_perf
            for r in self.RESULTS
            if r.machine == "m400" and r.linux == "4.18"
        }
        assert perfs[("Kernbench", "SeKVM")] > perfs[("Apache", "SeKVM")]

    def test_no_substantial_change_across_kernel_versions(self):
        perfs = {}
        for r in self.RESULTS:
            perfs[(r.workload, r.machine, r.hypervisor, r.linux)] = (
                r.normalized_perf
            )
        for (w, m, h, linux), perf in perfs.items():
            if linux != "4.18":
                continue
            other = perfs[(w, m, h, "5.4")]
            assert abs(perf - other) < 0.05


class TestDiscreteEventSimulator:
    def test_single_task_runs_to_completion(self):
        sim = MultiVMSimulator(cpus=1)
        sim.add_task(VCpuTask(0, 0, cpu_work=0.1, io_interval=0.02,
                              exit_overhead=0.0, io_service=0.0))
        makespan = sim.run()
        assert makespan == pytest.approx(0.1, rel=1e-6)

    def test_io_service_adds_wait(self):
        sim = MultiVMSimulator(cpus=1)
        sim.add_task(VCpuTask(0, 0, cpu_work=0.1, io_interval=0.02,
                              exit_overhead=0.0, io_service=0.01))
        makespan = sim.run()
        assert makespan > 0.1

    def test_exit_overhead_charged(self):
        def run(exit_overhead):
            sim = MultiVMSimulator(cpus=1)
            sim.add_task(VCpuTask(0, 0, cpu_work=0.1, io_interval=0.02,
                                  exit_overhead=exit_overhead, io_service=0.0))
            return sim.run()

        assert run(0.001) > run(0.0)

    def test_cpu_contention_slows_everyone(self):
        def makespan(tasks):
            sim = MultiVMSimulator(cpus=2)
            for i in range(tasks):
                sim.add_task(VCpuTask(i, 0, cpu_work=0.05, io_interval=0.01,
                                      exit_overhead=0.0, io_service=0.0))
            sim.run()
            return max(sim.vm_completion_times().values())

        assert makespan(4) > makespan(2) * 1.5

    def test_vm_completion_times_tracked_per_vm(self):
        sim = MultiVMSimulator(cpus=4)
        for vm in range(2):
            for vcpu in range(2):
                sim.add_task(VCpuTask(vm, vcpu, cpu_work=0.02,
                                      io_interval=0.01, exit_overhead=0.0,
                                      io_service=0.0))
        sim.run()
        assert set(sim.vm_completion_times()) == {0, 1}


class TestFigure9:
    POINTS = run_figure9(vm_counts=(1, 4, 16))

    def test_perf_decays_with_oversubscription(self):
        table = {
            (p.workload, p.hypervisor, p.vms): p.normalized_perf
            for p in self.POINTS
        }
        for workload in ("Apache", "Kernbench"):
            assert table[(workload, "KVM", 16)] < table[(workload, "KVM", 4)]
            # Oversubscription is ~proportional: 16 VMs on 8 cores get
            # roughly 1/4 the CPU of 4 VMs.
            ratio = table[(workload, "KVM", 16)] / table[(workload, "KVM", 4)]
            assert 0.15 < ratio < 0.45

    def test_sekvm_tracks_kvm_at_every_point(self):
        table = {
            (p.workload, p.hypervisor, p.vms): p.normalized_perf
            for p in self.POINTS
        }
        for (workload, hyp, n), perf in table.items():
            if hyp != "SeKVM":
                continue
            gap = 1 - perf / table[(workload, "KVM", n)]
            assert gap < 0.10, f"{workload}@{n}VMs gap {gap:.1%}"

    def test_one_vm_matches_figure8_closely(self):
        cfg = SimConfig(machine=M400, hypervisor=Hypervisor.KVM)
        for workload in APP_WORKLOADS:
            f9 = simulate_scaling(workload, cfg, n_vms=1)
            f8 = normalized_performance(workload, cfg, vcpus=2)
            assert abs(f9 - f8) < 0.06, workload.name


class TestWorkloadTables:
    def test_table2_describes_all_microbenchmarks(self):
        text = describe_table2()
        for mb in MICROBENCHMARKS:
            assert mb.name in text

    def test_table4_describes_all_apps(self):
        text = describe_table4()
        for wl in APP_WORKLOADS:
            assert wl.name in text

    def test_workload_lookup(self):
        assert workload_by_name("redis").name == "Redis"
        with pytest.raises(KeyError):
            workload_by_name("nope")


class TestModernMachinePrediction:
    """The paper's forward-looking claim: newer Arm CPUs (bigger TLBs)
    narrow the SeKVM gap further than Seattle already does."""

    def test_overhead_shrinks_with_modern_tlbs(self):
        from repro.perf import MODERN

        def ratio(machine):
            kvm = simulate_operation(
                SimConfig(machine=machine, hypervisor=Hypervisor.KVM),
                "Hypercall",
            )
            sekvm = simulate_operation(
                SimConfig(machine=machine, hypervisor=Hypervisor.SEKVM),
                "Hypercall",
            )
            return sekvm / kvm

        assert ratio(MODERN) <= ratio(SEATTLE) < ratio(M400)

    def test_modern_machine_is_registered(self):
        from repro.perf import MACHINES, MODERN

        assert MACHINES["modern"] is MODERN
        assert MODERN.tlb_entries > SEATTLE.tlb_entries
