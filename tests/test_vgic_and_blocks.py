"""Tests for the vGIC (virtual interrupts/IPIs) and huge-page (block)
stage-2 mappings."""

import pytest

from repro.errors import HypercallError, SecurityViolation, VerificationError
from repro.mmu import BlockEntry, MultiLevelPageTable
from repro.sekvm import SeKVMSystem, Stage2PageTable, make_image
from repro.sekvm.vgic import SGI_RANGE, SPI_RANGE, VGic, VGicDistributor
from repro.vrm import audit_operation_writes


class TestVGic:
    def test_sgi_roundtrip(self):
        vgic = VGic(vmid=1, n_vcpus=2)
        vgic.send_sgi(1, sender_vcpu=0, target_vcpu=1, intid=3)
        assert vgic.has_pending(1)
        delivered = vgic.deliver(1)
        assert delivered == [3]
        assert not vgic.has_pending(1)
        vgic.eoi(1, 3)

    def test_cross_vm_sgi_refused(self):
        vgic = VGic(vmid=1, n_vcpus=2)
        with pytest.raises(SecurityViolation):
            vgic.send_sgi(2, sender_vcpu=0, target_vcpu=1, intid=0)

    def test_sgi_intid_range(self):
        vgic = VGic(vmid=1, n_vcpus=1)
        with pytest.raises(HypercallError):
            vgic.send_sgi(1, 0, 0, intid=40)

    def test_spi_injection(self):
        vgic = VGic(vmid=1, n_vcpus=1)
        vgic.inject_spi(33)
        assert vgic.deliver(0) == [33]
        with pytest.raises(HypercallError):
            vgic.inject_spi(5)  # SGI range: not a device line

    def test_delivery_ordered_and_counted(self):
        vgic = VGic(vmid=1, n_vcpus=1)
        vgic.inject_spi(40)
        vgic.send_sgi(1, 0, 0, 2)
        assert vgic.deliver(0) == [2, 40]
        assert vgic.vcpus[0].delivered_count == 2

    def test_eoi_requires_active(self):
        vgic = VGic(vmid=1, n_vcpus=1)
        with pytest.raises(HypercallError):
            vgic.eoi(0, 3)

    def test_unknown_vcpu_rejected(self):
        vgic = VGic(vmid=1, n_vcpus=1)
        with pytest.raises(HypercallError):
            vgic.send_sgi(1, 0, 5, 0)


class TestVGicDistributor:
    def test_per_vm_isolation(self):
        dist = VGicDistributor()
        dist.create(1, 2)
        dist.create(2, 2)
        dist.send_ipi(1, 0, 1, 1)
        with pytest.raises(SecurityViolation):
            dist.send_ipi(1, 0, 2, 0)

    def test_duplicate_creation_rejected(self):
        dist = VGicDistributor()
        dist.create(1, 1)
        with pytest.raises(HypercallError):
            dist.create(1, 1)


class TestKCoreVIPI:
    def test_vipi_through_kcore(self):
        system = SeKVMSystem()
        image, _ = make_image(1)
        vmid = system.boot_vm(image, vcpus=2)
        system.kcore.send_vipi(0, vmid, sender_vcpu=0, target_vcpu=1)
        assert system.kcore.vgic.for_vm(vmid).has_pending(1)
        assert system.kcore.stats.virtual_ipis == 1

    def test_cross_vm_vipi_refused_by_kcore(self):
        system = SeKVMSystem()
        image, _ = make_image(1)
        a = system.boot_vm(image, vcpus=1)
        b = system.boot_vm(image, vcpus=1)
        # The hypercall surface takes one vmid; a malicious KServ cannot
        # route VM a's SGI into VM b because the distributor re-checks.
        with pytest.raises(SecurityViolation):
            system.kcore.vgic.send_ipi(a, 0, b, 0)

    def test_device_irq_injection(self):
        system = SeKVMSystem()
        image, _ = make_image(1)
        vmid = system.boot_vm(image, vcpus=1)
        system.kcore.inject_device_irq(0, vmid, intid=48)
        assert system.kcore.vgic.for_vm(vmid).deliver(0) == [48]


class TestBlockMappings:
    def test_block_walk_covers_range(self):
        pt = MultiLevelPageTable(levels=3, va_bits_per_level=4)
        pt.map_block(0x100, base=0x4000, level=1)   # 16-page block
        for offset in (0, 1, 15):
            assert pt.walk(0x100 + offset) == 0x4000 + offset
        assert pt.walk(0x110) is None

    def test_block_alignment_enforced(self):
        pt = MultiLevelPageTable(levels=3, va_bits_per_level=4)
        with pytest.raises(VerificationError):
            pt.map_block(0x101, base=0x4000, level=1)

    def test_block_level_bounds(self):
        pt = MultiLevelPageTable(levels=3, va_bits_per_level=4)
        with pytest.raises(VerificationError):
            pt.map_block(0x100, 0x4000, level=2)  # leaf level: use map()

    def test_block_never_overwrites(self):
        pt = MultiLevelPageTable(levels=3, va_bits_per_level=4)
        pt.map(0x100, 0x99)
        with pytest.raises(VerificationError):
            pt.map_block(0x100, 0x4000, level=1)

    def test_page_map_collides_with_block(self):
        pt = MultiLevelPageTable(levels=3, va_bits_per_level=4)
        pt.map_block(0x100, 0x4000, level=1)
        with pytest.raises(VerificationError):
            pt.map(0x105, 0x77)

    def test_block_unmap_is_single_write(self):
        pt = MultiLevelPageTable(levels=3, va_bits_per_level=4)
        pt.map_block(0x100, 0x4000, level=1)
        mark = len(pt.write_log)
        assert pt.unmap(0x105)
        assert len(pt.write_log) - mark == 1
        assert pt.walk(0x100) is None

    def test_mappings_expand_blocks(self):
        pt = MultiLevelPageTable(levels=2, va_bits_per_level=2)
        pt.map_block(0b0100, base=0x40, level=0)  # 4-page block
        expanded = dict(pt.mappings())
        assert expanded == {0b0100: 0x40, 0b0101: 0x41,
                            0b0110: 0x42, 0b0111: 0x43}

    def test_stage2_block_operation_audited(self):
        s2 = Stage2PageTable("vm0", levels=3, va_bits_per_level=4)
        op = s2.set_s2pt_block(0, vpn=0x200, pfn_base=0x8000)
        assert op.kind == "map" and not op.tlbi
        assert audit_operation_writes(op.writes, "map").verified
        assert s2.translate(0x20F) == 0x800F

    def test_stage2_block_then_unmap_with_tlbi(self):
        s2 = Stage2PageTable("vm0", levels=3, va_bits_per_level=4)
        s2.set_s2pt_block(0, vpn=0x200, pfn_base=0x8000)
        op = s2.clear_s2pt(0, 0x200)
        assert op.tlbi and op.barrier_before_tlbi
        assert s2.translate(0x200) is None
