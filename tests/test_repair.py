"""Tests for automatic barrier repair (repro.vrm.repair)."""

import pytest

from repro.errors import VerificationError
from repro.ir import ThreadBuilder, build_program
from repro.litmus import example3_vcpu
from repro.vrm.repair import Strengthening, repair_barriers

X, Y = 0x100, 0x200


def mp_program():
    t0 = ThreadBuilder(0)
    t0.store(X, 1).store(Y, 1)
    t1 = ThreadBuilder(1)
    t1.load("r0", Y).load("r1", X)
    return build_program(
        [t0, t1], observed={1: ["r0", "r1"]},
        initial_memory={X: 0, Y: 0}, name="MP",
    )


class TestRepair:
    def test_mp_repaired_with_release_acquire_pair(self):
        result = repair_barriers(mp_program())
        assert not result.already_robust
        assert len(result.fixes) == 2
        kinds = {f.kind for f in result.fixes}
        assert kinds == {"acquire", "release"}
        # The release goes on the flag store (writer pc 1); the acquire
        # on the flag read (reader pc 0).
        by_tid = {f.tid: f for f in result.fixes}
        assert by_tid[0].pc == 1 and by_tid[0].kind == "release"
        assert by_tid[1].pc == 0 and by_tid[1].kind == "acquire"

    def test_repair_result_is_minimal(self):
        # No single strengthening fixes MP, so the result must be size 2.
        result = repair_barriers(mp_program(), max_fixes=1)
        assert not result.already_robust
        assert result.fixes == ()

    def test_example3_repair_matches_the_paper_fix(self):
        program = example3_vcpu(correct=False)
        result = repair_barriers(program)
        assert len(result.fixes) == 2
        description = result.describe(program)
        assert "release" in description and "acquire" in description

    def test_robust_program_reported_as_such(self):
        result = repair_barriers(example3_vcpu(correct=True))
        assert result.already_robust
        assert result.fixes == ()

    def test_budget_exhaustion_reported(self):
        result = repair_barriers(mp_program(), max_fixes=2, max_sets=1)
        assert not result.already_robust
        assert result.fixes == ()
        assert result.candidates_tried == 1
        assert "no repair found" in result.describe(mp_program())

    def test_applied_fix_preserves_other_instructions(self):
        program = mp_program()
        result = repair_barriers(program)
        from repro.vrm.repair import _apply

        repaired = _apply(program, result.fixes)
        assert len(repaired.threads[0].instrs) == len(
            program.threads[0].instrs
        )
        assert repaired.threads[0].instrs[0] == program.threads[0].instrs[0]
