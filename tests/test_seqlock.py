"""Seqlock case study: a synchronization pattern beyond locks.

Seqlocks protect read-mostly data without reader-side writes: the writer
brackets updates with sequence-counter increments (odd = in progress);
readers retry when the counter changed or was odd.  The correctness
property is different from mutual exclusion — *validated reads are never
torn* — which exercises the framework on a reader-validity invariant.

On relaxed hardware the pattern only works with the right barriers
(acquire on the first counter read, read barrier before the second,
release on the writer's closing increment); the plain variant admits
torn-but-validated reads, which the explorer must find.
"""

import pytest

from repro.ir import MemSpace, Reg, ThreadBuilder, build_program
from repro.memory import explore_promising, explore_sc

SEQ, X, Y = 0x10, 0x20, 0x21


def seqlock_program(correct: bool):
    """One writer updating (X, Y) atomically-by-protocol; one reader."""
    writer = ThreadBuilder(0, name="writer")
    writer.store(SEQ, 1, release=correct, space=MemSpace.SYNC)  # odd: open
    if correct:
        writer.barrier("full")          # counter visible before data
    writer.store(X, 1)
    writer.store(Y, 1)
    writer.store(SEQ, 2, release=correct, space=MemSpace.SYNC)  # even: close

    reader = ThreadBuilder(1, name="reader")
    reader.load("s1", SEQ, acquire=correct, space=MemSpace.SYNC)
    reader.load("r1", X)
    reader.load("r2", Y)
    if correct:
        reader.barrier("ld")            # data read before the recheck
    reader.load("s2", SEQ, space=MemSpace.SYNC)
    return build_program(
        [writer, reader],
        observed={1: ["s1", "r1", "r2", "s2"]},
        initial_memory={SEQ: 0, X: 0, Y: 0},
        spaces={SEQ: MemSpace.SYNC},
        name=f"seqlock[{'barriers' if correct else 'plain'}]",
    )


def validated_tears(result):
    """Behaviors the reader would *accept* (s1 == s2, even) whose data
    is torn (r1 != r2)."""
    torn = []
    for behavior in result.behaviors:
        regs = {(t, r): v for t, r, v in behavior.registers}
        s1, s2 = regs[(1, "s1")], regs[(1, "s2")]
        r1, r2 = regs[(1, "r1")], regs[(1, "r2")]
        if s1 == s2 and s1 % 2 == 0 and r1 != r2:
            torn.append(behavior)
    return torn


class TestSeqlock:
    def test_sc_never_validates_a_torn_read(self):
        for correct in (True, False):
            result = explore_sc(seqlock_program(correct))
            assert result.complete
            assert validated_tears(result) == []

    def test_barriered_seqlock_sound_on_rm(self):
        result = explore_promising(seqlock_program(correct=True))
        assert result.complete
        assert validated_tears(result) == []

    def test_plain_seqlock_tears_on_rm(self):
        result = explore_promising(seqlock_program(correct=False))
        assert result.complete
        assert validated_tears(result), (
            "the relaxed model must expose the torn-but-validated read"
        )

    def test_retry_outcome_always_available(self):
        # The reader can always (also) observe a mismatch forcing retry
        # when it raced the writer.
        result = explore_promising(seqlock_program(correct=True))
        raced = [
            b for b in result.behaviors
            if dict(((t, r), v) for t, r, v in b.registers)[(1, "s1")] == 1
        ]
        assert raced  # the odd (in-progress) counter is observable
