"""The ``REPRO_VM_FEATURES`` behavior families: gating and detection.

Three properties anchor the feature gates:

1. **Flag-off bit-identity** — with no features enabled, exploration is
   bit-identical to the seed engine.  Asserted against the checked-in
   digest corpus, so the claim is anchored to recorded history, not to
   a same-process re-run.
2. **Flag-on neutrality** — enabling every feature must not change the
   behavior set of a program that never touches the MMU (the
   ``REPRO_VM_CHECK=1`` cross-check enforces this inside ``explore``
   itself; here we both rely on it and assert digest equality).
3. **Mutant sensitivity** — each seeded VM-feature bug class is killed
   by the ``vm`` conformance profile within a small fixed-seed budget,
   with the witness shrunk to at most 8 operations.

Plus the cache-key discipline: feature sets (programmatic or via the
environment) are folded into exploration cache keys, so a featured run
can never replay a default-model result.
"""

import json
import pathlib

import pytest

from repro.conformance import FuzzConfig, run_fuzz
from repro.conformance.digests import behavior_digest
from repro.litmus.catalog import full_corpus
from repro.litmus.runner import litmus_configs
from repro.memory import explore, mutants
from repro.memory.cache import cached_explore, exploration_key
from repro.memory.semantics import (
    VM_FEATURES,
    ModelConfig,
    parse_vm_features,
    resolve_vm_features,
)

CORPUS = pathlib.Path(__file__).parent / "corpus" / "litmus_digests.json"

#: Feature-free catalog samples re-digested against the checked-in
#: corpus (cheap ones; the full sweep is test_corpus_regression.py).
_SAMPLES = ("MP", "SB", "LB", "CoRR")


def _tests_by_name():
    return {t.name: t for t in full_corpus()}


class TestFlagOffBitIdentity:
    def test_default_config_has_no_features(self):
        assert ModelConfig().vm_features == frozenset()
        assert ModelConfig() == ModelConfig(vm_features=frozenset())

    def test_flag_off_digests_match_recorded_corpus(self):
        """The current engine, features off, reproduces the recorded
        seed digests bit-for-bit."""
        recorded = json.loads(CORPUS.read_text())
        tests = _tests_by_name()
        for name in _SAMPLES:
            test = tests[name]
            assert not test.vm_features
            sc_cfg, rm_cfg = litmus_configs(test)
            observe = sorted(test.program.initial_memory)
            sc = cached_explore(test.program, sc_cfg, observe_locs=observe)
            rm = cached_explore(test.program, rm_cfg, observe_locs=observe)
            assert behavior_digest(sc) == recorded[name]["sc"], name
            assert behavior_digest(rm) == recorded[name]["rm"], name

    def test_vm_corpus_is_digested_under_its_features(self):
        """Feature-carrying catalog entries digest under their features:
        the amalgamated-BBM test's relaxed digest differs from the
        honest protocol's exactly because the stale outcome exists."""
        recorded = json.loads(CORPUS.read_text())
        assert (
            recorded["VM-bbm[honest]"]["rm"]
            != recorded["VM-bbm[amalgamated]"]["rm"]
        )
        assert (
            recorded["VM-bbm[honest]"]["sc"]
            == recorded["VM-bbm[amalgamated]"]["sc"]
        )


class TestFlagOnNeutrality:
    def _feature_free_test(self):
        return _tests_by_name()["MP"]

    def test_all_features_are_noop_on_mmu_free_programs(self, monkeypatch):
        """REPRO_VM_FEATURES=all + REPRO_VM_CHECK=1: the in-engine
        cross-check runs (raising on any divergence) and the behavior
        set equals the flag-off one."""
        test = self._feature_free_test()
        observe = sorted(test.program.initial_memory)
        baseline = explore(
            test.program, ModelConfig(relaxed=True), observe_locs=observe
        )
        monkeypatch.setenv("REPRO_VM_FEATURES", "all")
        monkeypatch.setenv("REPRO_VM_CHECK", "1")
        featured = explore(
            test.program, ModelConfig(relaxed=True), observe_locs=observe
        )
        assert featured.behaviors == baseline.behaviors
        assert behavior_digest(featured) == behavior_digest(baseline)

    def test_env_features_resolve_into_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_VM_FEATURES", "bbm,had")
        cfg = resolve_vm_features(ModelConfig())
        assert cfg.vm_features == frozenset({"bbm", "had"})
        # Explicit settings are immune to the environment.
        explicit = ModelConfig(vm_features=frozenset({"stage2"}))
        assert resolve_vm_features(explicit) is explicit

    def test_parse_rejects_unknown_and_expands_all(self):
        from repro.errors import ProgramError

        assert parse_vm_features("all") == frozenset(VM_FEATURES)
        assert parse_vm_features("") == frozenset()
        with pytest.raises(ProgramError):
            parse_vm_features("bbm,telepathy")


#: (mutant, expected oracle, fixed-seed budget) for the VM families.
VM_MUTANT_MATRIX = [
    ("bbm-skipped", "vm", 20),
    ("stale-intermediate-walk", "vm", 20),
    ("lost-dirty-bit", "vm", 20),
]


@pytest.mark.parametrize(
    "mutant,oracle,budget",
    VM_MUTANT_MATRIX,
    ids=[m[0] for m in VM_MUTANT_MATRIX],
)
class TestVMMutantsAreKilled:
    def test_mutant_is_detected_and_shrunk(self, mutant, oracle, budget):
        with mutants.seeded(mutant):
            report = run_fuzz(FuzzConfig(
                seed=0, budget=budget, profiles=("vm",), max_findings=2,
            ))
            assert report.findings, (
                f"{mutant} survived {budget} vm-profile programs"
            )
            finding = report.findings[0]
            assert finding.oracle == oracle
            assert finding.shrunk is not None
            assert finding.shrunk.size() <= 8, (
                f"{mutant}: shrunk counterexample has "
                f"{finding.shrunk.size()} ops"
            )
        assert not mutants.active()

    def test_same_seeds_are_clean_without_the_mutant(
        self, mutant, oracle, budget
    ):
        report = run_fuzz(FuzzConfig(
            seed=0, budget=budget, profiles=("vm",), max_findings=2,
        ))
        assert report.ok, "\n".join(f.describe() for f in report.findings)


class TestCacheKeyFolding:
    def _program(self):
        return _tests_by_name()["MP"].program

    def test_programmatic_features_change_keys(self):
        program = self._program()
        plain = exploration_key(program, ModelConfig(), None, False, True)
        featured = exploration_key(
            program, ModelConfig(vm_features=frozenset({"bbm"})),
            None, False, True,
        )
        assert plain != featured
        # Same feature set -> same key (determinism of the fold).
        assert featured == exploration_key(
            program, ModelConfig(vm_features=frozenset({"bbm"})),
            None, False, True,
        )

    def test_env_features_change_keys(self, monkeypatch):
        program = self._program()
        plain = exploration_key(program, ModelConfig(), None, False, True)
        monkeypatch.setenv("REPRO_VM_FEATURES", "walk-cache")
        env_key = exploration_key(program, ModelConfig(), None, False, True)
        assert env_key != plain
        # The env fold and the programmatic fold agree.
        monkeypatch.delenv("REPRO_VM_FEATURES")
        assert env_key == exploration_key(
            program, ModelConfig(vm_features=frozenset({"walk-cache"})),
            None, False, True,
        )

    def test_vm_mutants_change_keys(self):
        program = self._program()
        honest = exploration_key(program, ModelConfig(), None, False, True)
        with mutants.seeded("bbm-skipped"):
            mutated = exploration_key(program, ModelConfig(), None, False, True)
        assert honest != mutated
        assert honest == exploration_key(program, ModelConfig(), None, False, True)
