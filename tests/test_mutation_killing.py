"""Mutation-killing suite: the conformance oracles must catch seeded bugs.

"Zero disagreements" from a fuzzer is only evidence if the fuzzer can
be shown to fire when the engine is actually broken.  Each test here
switches on one seeded bug class from :mod:`repro.memory.mutants` —
a weakened full-barrier semantics, a DRF monitor that swallows
violations, a partial-order reduction applied outside its soundness
gate — and asserts the differential harness detects it within a small
fixed-seed budget, shrinking the witness to at most 8 operations.

The bounded budgets double as a sensitivity measurement: if a future
generator change makes a mutant survive its budget, this suite fails
and the generator (not the budget) should be fixed.
"""

import pytest

from repro.conformance import FuzzConfig, run_fuzz
from repro.memory import mutants

#: (mutant, generation profiles that expose it, expected oracle, budget)
MUTANT_MATRIX = [
    ("weaken-barrier-full", ("fenced",), "equivalence", 40),
    ("weaken-drf-monitor", ("sync",), "monitor", 20),
    ("skip-por-gate", ("plain",), "por", 40),
    ("bmc-drop-clause", ("plain",), "backend", 40),
    ("bmc-off-by-one-bound", ("plain",), "backend", 40),
    ("lost-flush", ("plain",), "portability", 40),
    ("read-skips-own-buffer", ("plain",), "portability", 40),
]


@pytest.mark.parametrize(
    "mutant,profiles,oracle,budget",
    MUTANT_MATRIX,
    ids=[m[0] for m in MUTANT_MATRIX],
)
class TestMutantsAreKilled:
    def test_mutant_is_detected_and_shrunk(
        self, mutant, profiles, oracle, budget
    ):
        with mutants.seeded(mutant):
            report = run_fuzz(FuzzConfig(
                seed=0, budget=budget, profiles=profiles, max_findings=8,
            ))
            assert report.findings, (
                f"{mutant} survived {budget} programs on {profiles}"
            )
            # The designated oracle must fire within the budget; other
            # oracles firing too is redundant detection, not a failure
            # (e.g. unsound POR drops behaviors from one model, which
            # the cross-model portability oracle also notices).
            matching = [f for f in report.findings if f.oracle == oracle]
            assert matching, (
                f"{mutant}: oracle {oracle!r} never fired; got "
                + ", ".join(sorted({f.oracle for f in report.findings}))
            )
            finding = matching[0]
            assert finding.shrunk is not None
            assert finding.shrunk.size() <= 8, (
                f"{mutant}: shrunk counterexample has "
                f"{finding.shrunk.size()} ops"
            )
        # The context manager restored the honest engine.
        assert not mutants.active()

    def test_same_seeds_are_clean_without_the_mutant(
        self, mutant, profiles, oracle, budget
    ):
        report = run_fuzz(FuzzConfig(
            seed=0, budget=budget, profiles=profiles, max_findings=2,
        ))
        assert report.ok, "\n".join(f.describe() for f in report.findings)


class TestTSOPortabilityKills:
    """Each store-buffer mutant breaks exactly one containment
    direction, and :func:`~repro.vrm.portability.check_portability`
    names it on a deterministic witness program — no fuzzing budget
    involved.  ``lost-flush`` drops a buffered write (SC ⊄ TSO on the
    store-buffering shape); ``read-skips-own-buffer`` defeats store
    forwarding, which only a program reading its own recent write can
    see (TSO ⊄ Arm on the CoWW shape — Arm coherence never lets a
    thread read past its own latest store)."""

    @staticmethod
    def _by_name(name):
        from repro.litmus.catalog import full_corpus

        return next(t for t in full_corpus() if t.name == name).program

    def test_lost_flush_breaks_sc_subset_tso(self):
        from repro.vrm.portability import check_portability

        sb = self._by_name("SB")
        assert check_portability(sb) == []
        with mutants.seeded("lost-flush"):
            problems = check_portability(sb)
        assert problems, "lost-flush survived the SB containment check"
        assert any("SC ⊄ TSO" in p for p in problems)

    def test_read_skips_own_buffer_breaks_tso_subset_arm(self):
        from repro.vrm.portability import check_portability

        coww = self._by_name("CoWW")
        assert check_portability(coww) == []
        with mutants.seeded("read-skips-own-buffer"):
            problems = check_portability(coww)
        assert problems, (
            "read-skips-own-buffer survived the CoWW containment check"
        )
        assert any("TSO ⊄ ARM" in p for p in problems)


class TestTSOCrossCheck:
    """``REPRO_TSO_CHECK=1`` re-derives SC/Arm behavior sets alongside
    every TSO exploration of an MMU-free program and raises when the
    sandwich SC ⊆ TSO ⊆ Arm breaks."""

    @staticmethod
    def _sb_program():
        from repro.litmus.catalog import full_corpus

        return next(t for t in full_corpus() if t.name == "SB").program

    def test_cross_check_passes_on_the_honest_engine(self, monkeypatch):
        from repro.memory import explore_tso

        monkeypatch.setenv("REPRO_TSO_CHECK", "1")
        result = explore_tso(self._sb_program())
        assert result.complete

    def test_cross_check_raises_under_lost_flush(self, monkeypatch):
        from repro.errors import VerificationError
        from repro.memory import explore_tso

        monkeypatch.setenv("REPRO_TSO_CHECK", "1")
        with mutants.seeded("lost-flush"):
            with pytest.raises(VerificationError, match="SC ⊆ TSO"):
                explore_tso(self._sb_program())


class TestMutantRegistry:
    def test_unknown_mutant_is_rejected(self):
        with pytest.raises(ValueError):
            mutants.enable("definitely-not-a-mutant")

    def test_seeded_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with mutants.seeded("skip-por-gate"):
                assert mutants.enabled("skip-por-gate")
                raise RuntimeError("boom")
        assert not mutants.active()

    def test_fingerprint_is_stable_and_sorted(self):
        assert mutants.fingerprint() == ""
        with mutants.seeded("weaken-drf-monitor", "skip-por-gate"):
            assert mutants.fingerprint() == (
                "skip-por-gate,weaken-drf-monitor"
            )
        assert mutants.fingerprint() == ""

    def test_mutants_change_exploration_cache_keys(self):
        from repro.conformance import build, random_genome, derive_rng
        from repro.memory.cache import exploration_key
        from repro.memory.semantics import SC

        program = build(random_genome("plain", derive_rng(0, "key")))
        honest = exploration_key(program, SC, None, False, True)
        with mutants.seeded("skip-por-gate"):
            mutated = exploration_key(program, SC, None, False, True)
        assert honest != mutated
        assert honest == exploration_key(program, SC, None, False, True)
