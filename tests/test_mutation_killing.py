"""Mutation-killing suite: the conformance oracles must catch seeded bugs.

"Zero disagreements" from a fuzzer is only evidence if the fuzzer can
be shown to fire when the engine is actually broken.  Each test here
switches on one seeded bug class from :mod:`repro.memory.mutants` —
a weakened full-barrier semantics, a DRF monitor that swallows
violations, a partial-order reduction applied outside its soundness
gate — and asserts the differential harness detects it within a small
fixed-seed budget, shrinking the witness to at most 8 operations.

The bounded budgets double as a sensitivity measurement: if a future
generator change makes a mutant survive its budget, this suite fails
and the generator (not the budget) should be fixed.
"""

import pytest

from repro.conformance import FuzzConfig, run_fuzz
from repro.memory import mutants

#: (mutant, generation profiles that expose it, expected oracle, budget)
MUTANT_MATRIX = [
    ("weaken-barrier-full", ("fenced",), "equivalence", 40),
    ("weaken-drf-monitor", ("sync",), "monitor", 20),
    ("skip-por-gate", ("plain",), "por", 40),
    ("bmc-drop-clause", ("plain",), "backend", 40),
    ("bmc-off-by-one-bound", ("plain",), "backend", 40),
]


@pytest.mark.parametrize(
    "mutant,profiles,oracle,budget",
    MUTANT_MATRIX,
    ids=[m[0] for m in MUTANT_MATRIX],
)
class TestMutantsAreKilled:
    def test_mutant_is_detected_and_shrunk(
        self, mutant, profiles, oracle, budget
    ):
        with mutants.seeded(mutant):
            report = run_fuzz(FuzzConfig(
                seed=0, budget=budget, profiles=profiles, max_findings=2,
            ))
            assert report.findings, (
                f"{mutant} survived {budget} programs on {profiles}"
            )
            finding = report.findings[0]
            assert finding.oracle == oracle
            assert finding.shrunk is not None
            assert finding.shrunk.size() <= 8, (
                f"{mutant}: shrunk counterexample has "
                f"{finding.shrunk.size()} ops"
            )
        # The context manager restored the honest engine.
        assert not mutants.active()

    def test_same_seeds_are_clean_without_the_mutant(
        self, mutant, profiles, oracle, budget
    ):
        report = run_fuzz(FuzzConfig(
            seed=0, budget=budget, profiles=profiles, max_findings=2,
        ))
        assert report.ok, "\n".join(f.describe() for f in report.findings)


class TestMutantRegistry:
    def test_unknown_mutant_is_rejected(self):
        with pytest.raises(ValueError):
            mutants.enable("definitely-not-a-mutant")

    def test_seeded_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with mutants.seeded("skip-por-gate"):
                assert mutants.enabled("skip-por-gate")
                raise RuntimeError("boom")
        assert not mutants.active()

    def test_fingerprint_is_stable_and_sorted(self):
        assert mutants.fingerprint() == ""
        with mutants.seeded("weaken-drf-monitor", "skip-por-gate"):
            assert mutants.fingerprint() == (
                "skip-por-gate,weaken-drf-monitor"
            )
        assert mutants.fingerprint() == ""

    def test_mutants_change_exploration_cache_keys(self):
        from repro.conformance import build, random_genome, derive_rng
        from repro.memory.cache import exploration_key
        from repro.memory.semantics import SC

        program = build(random_genome("plain", derive_rng(0, "key")))
        honest = exploration_key(program, SC, None, False, True)
        with mutants.seeded("skip-por-gate"):
            mutated = exploration_key(program, SC, None, False, True)
        assert honest != mutated
        assert honest == exploration_key(program, SC, None, False, True)
