"""Behavioral tests for the push/pull Promising model (Section 4.1)."""

import pytest

from repro.ir import MemSpace, Reg, ThreadBuilder, build_program
from repro.memory import explore_pushpull

DATA, FLAG = 0x100, 0x200


def handoff(correct=True, push=True, pull=True):
    """Producer publishes DATA then FLAG; consumer pulls and reads."""
    t0 = ThreadBuilder(0)
    t0.store(DATA, 1)
    if push:
        t0.push(DATA)
    t0.store(FLAG, 1, release=correct, space=MemSpace.SYNC)
    t1 = ThreadBuilder(1)
    t1.spin_until_eq("f", FLAG, 1, acquire=correct)
    if pull:
        t1.pull(DATA)
    t1.load("got", DATA)
    return build_program(
        [t0, t1],
        observed={1: ["got"]},
        initial_memory={DATA: 0, FLAG: 0},
        name="handoff",
    )


class TestOwnershipDiscipline:
    def test_correct_handoff_panic_free(self):
        res = explore_pushpull(
            handoff(), owned_access_required=[DATA],
            initial_ownership=[(DATA, 0)],
        )
        assert res.panic_free
        assert res.complete

    def test_access_without_pull_panics(self):
        res = explore_pushpull(
            handoff(pull=False), owned_access_required=[DATA],
            initial_ownership=[(DATA, 0)],
        )
        assert any("without pulling" in r for r in res.panics)

    def test_push_without_ownership_panics(self):
        t0 = ThreadBuilder(0)
        t0.push(DATA)
        p = build_program([t0], initial_memory={DATA: 0})
        res = explore_pushpull(p)
        assert any("does not own" in r for r in res.panics)

    def test_double_pull_panics(self):
        t0 = ThreadBuilder(0)
        t0.pull(DATA)
        t1 = ThreadBuilder(1)
        t1.pull(DATA)
        p = build_program([t0, t1], initial_memory={DATA: 0})
        res = explore_pushpull(p)
        assert any("owned by CPU" in r for r in res.panics)

    def test_access_to_location_owned_by_other_panics(self):
        t0 = ThreadBuilder(0)
        t0.pull(DATA).load("r0", DATA).push(DATA)
        t1 = ThreadBuilder(1)
        t1.store(DATA, 9)
        p = build_program([t0, t1], initial_memory={DATA: 0})
        res = explore_pushpull(p)
        assert any("owned by CPU" in r for r in res.panics)

    def test_sync_space_accesses_exempt(self):
        # Lock words may race freely; the model never flags them.
        t0 = ThreadBuilder(0)
        t0.store(FLAG, 1, space=MemSpace.SYNC)
        t1 = ThreadBuilder(1)
        t1.load("r0", FLAG, space=MemSpace.SYNC)
        p = build_program([t0, t1], initial_memory={FLAG: 0})
        res = explore_pushpull(p, owned_access_required=[])
        assert res.panic_free

    def test_user_threads_exempt(self):
        t0 = ThreadBuilder(0, is_kernel=False)
        t0.store(DATA, 1)
        t1 = ThreadBuilder(1, is_kernel=False)
        t1.store(DATA, 2)
        p = build_program([t0, t1], initial_memory={DATA: 0})
        res = explore_pushpull(p, owned_access_required=[DATA])
        assert res.panic_free


class TestBarrierFulfillment:
    """The dynamic No-Barrier-Misuse rule: a pull must be covered by the
    puller's barrier frontier relative to the previous push."""

    def test_missing_acquire_detected(self):
        res = explore_pushpull(
            handoff(correct=False), owned_access_required=[DATA],
            initial_ownership=[(DATA, 0)],
        )
        assert any("No-Barrier-Misuse" in r for r in res.panics)

    def test_dmb_ld_also_fulfills_pull(self):
        t0 = ThreadBuilder(0)
        t0.store(DATA, 1)
        t0.push(DATA)
        t0.store(FLAG, 1, release=True, space=MemSpace.SYNC)
        t1 = ThreadBuilder(1)
        t1.spin_until_eq("f", FLAG, 1, acquire=False)
        t1.barrier("ld")
        t1.pull(DATA)
        t1.load("got", DATA)
        p = build_program([t0, t1], observed={1: ["got"]},
                          initial_memory={DATA: 0, FLAG: 0})
        res = explore_pushpull(
            p, owned_access_required=[DATA], initial_ownership=[(DATA, 0)]
        )
        assert res.panic_free

    def test_sc_base_model_skips_barrier_rule(self):
        # On the SC push/pull model (CertiKOS-style) barriers are not
        # required; only ownership is checked.
        res = explore_pushpull(
            handoff(correct=False), owned_access_required=[DATA],
            initial_ownership=[(DATA, 0)], relaxed=False,
        )
        assert res.panic_free

    def test_initial_pull_needs_no_barrier(self):
        t0 = ThreadBuilder(0)
        t0.pull(DATA).load("r0", DATA).push(DATA)
        p = build_program([t0], initial_memory={DATA: 0})
        res = explore_pushpull(p, owned_access_required=[DATA])
        assert res.panic_free
