"""Tests for the reporting package and smoke tests for the examples."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.report import (
    COMPONENTS,
    PAPER_TABLE1,
    condition_to_security_ratio,
    count_loc,
    format_table1,
    loc_table,
    render_table,
)

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


class TestLocTable:
    ROWS = loc_table()

    def test_every_component_counted(self):
        assert {r.component for r in self.ROWS} == set(COMPONENTS)
        for row in self.ROWS:
            assert row.files > 0
            assert row.loc > 100

    def test_condition_layer_much_smaller_than_security_model(self):
        """The paper's Table 1 observation: proving the conditions is
        roughly an order of magnitude less effort than the security
        proofs (3.8K vs 34.2K Coq).  Our analogous layers keep the
        condition layer a small fraction of the system layer."""
        ratio = condition_to_security_ratio(self.ROWS)
        paper_ratio = PAPER_TABLE1[
            "SeKVM satisfies wDRF (programs + pipeline)"
        ] / PAPER_TABLE1["SeKVM system + security model"]
        assert ratio < 0.5
        assert paper_ratio < 0.15  # sanity on the embedded paper numbers

    def test_format_table1(self):
        text = format_table1(self.ROWS)
        for component in COMPONENTS:
            assert component in text

    def test_count_loc_skips_blanks_and_comments(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("# comment\n\nx = 1\n  # indented comment\ny = 2\n")
        assert count_loc(f) == 2


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len({len(l) for l in lines[2:]}) == 1  # aligned rows


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "rm_bug_tour.py",
        "smmu_dma_protection.py",
        "explain_relaxed_execution.py",
        "multi_vm_scaling.py",
        "model_crosscheck.py",
        "verify_your_own_kernel.py",
    ],
)
def test_example_scripts_run(script):
    """Every example must execute cleanly end to end."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout


def test_verify_sekvm_example_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "verify_sekvm.py")],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr
    assert "all attacks refused: True" in result.stdout
    assert "REJECTED" in result.stdout  # seeded bugs shown as rejected
