"""Tests for the CompareAndSwap instruction and the synchronization-
primitive verification sweep (repro.sync)."""

import pytest

from repro.ir import Reg, ThreadBuilder, build_program
from repro.memory import admits, explore_promising, explore_sc
from repro.sync import (
    all_primitives,
    counter_harness,
    dmb_tas_lock,
    tas_lock,
    ticket_lock,
    ttas_lock,
    verify_primitive,
)

X = 0x100


class TestCompareAndSwap:
    def test_successful_swap(self):
        b = ThreadBuilder(0)
        b.cas("old", X, 0, 7).load("after", X)
        p = build_program([b], observed={0: ["old", "after"]},
                          initial_memory={X: 0})
        res = explore_sc(p)
        assert admits(res, t0_old=0, t0_after=7)

    def test_failed_swap_leaves_value(self):
        b = ThreadBuilder(0)
        b.cas("old", X, 5, 7).load("after", X)
        p = build_program([b], observed={0: ["old", "after"]},
                          initial_memory={X: 1})
        res = explore_sc(p)
        assert admits(res, t0_old=1, t0_after=1)

    def test_atomicity_only_one_winner(self):
        t0 = ThreadBuilder(0)
        t0.cas("r0", X, 0, 1)
        t1 = ThreadBuilder(1)
        t1.cas("r1", X, 0, 2)
        p = build_program([t0, t1], observed={0: ["r0"], 1: ["r1"]},
                          initial_memory={X: 0})
        res = explore_promising(p)
        assert not admits(res, t0_r0=0, t1_r1=0)  # both cannot win

    def test_cas_reads_coherence_latest(self):
        # A CAS never reads stale: it must see the other CAS's write.
        t0 = ThreadBuilder(0)
        t0.cas("r0", X, 0, 1)
        t1 = ThreadBuilder(1)
        t1.cas("r1", X, 1, 2)
        p = build_program([t0, t1], observed={0: ["r0"], 1: ["r1"]},
                          initial_memory={X: 0})
        res = explore_promising(p, observe_locs=[X])
        finals = {dict(b.memory)[X] for b in res.behaviors}
        assert finals == {1, 2}  # 2 only when t1 ran after t0

    def test_cas_acquire_orders_later_reads(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).store(0x200, 1, release=True)
        t1 = ThreadBuilder(1)
        loop = t1.fresh_label("spin")
        t1.label(loop)
        t1.cas("got", 0x200, 1, 2, acquire=True)
        t1.bnz(Reg("got") - 1, loop)
        t1.load("r1", X)
        p = build_program([t0, t1], observed={1: ["r1"]},
                          initial_memory={X: 0, 0x200: 0})
        res = explore_promising(p)
        assert not admits(res, t1_r1=0)


CORRECT = [p for p in all_primitives() if p.correct]
BROKEN = [p for p in all_primitives() if not p.correct]


@pytest.mark.parametrize("prim", CORRECT, ids=[p.name for p in CORRECT])
def test_correct_primitive_verifies(prim):
    result = verify_primitive(prim)
    assert result.verified, result.describe()


@pytest.mark.parametrize("prim", BROKEN, ids=[p.name for p in BROKEN])
def test_broken_primitive_rejected(prim):
    result = verify_primitive(prim)
    assert not result.verified, result.describe()
    assert not result.mutual_exclusion  # updates actually lost on RM
    assert not result.theorem.holds


def test_broken_tas_loses_updates():
    from repro.sync.verify import COUNTER_LOC

    program = counter_harness(tas_lock(correct=False))
    rm = explore_promising(program, observe_locs=[COUNTER_LOC])
    finals = {dict(b.memory)[COUNTER_LOC] for b in rm.behaviors}
    assert 1 in finals  # a lost update is observable
    assert 2 in finals


def test_harness_uses_distinct_lock_words():
    program = counter_harness(ticket_lock())
    assert program.initial_memory.keys() >= {0x10, 0x11, 0x20}


class TestExclusives:
    def test_llsc_single_thread_increment(self):
        b = ThreadBuilder(0)
        retry = b.fresh_label("retry")
        b.label(retry)
        b.ldxr("old", X)
        b.stxr("st", X, Reg("old") + 1)
        b.bnz(Reg("st"), retry)
        p = build_program([b], observed={0: ["old"]}, initial_memory={X: 5})
        res = explore_promising(p, observe_locs=[X])
        finals = {dict(beh.memory)[X] for beh in res.behaviors}
        assert finals == {6}

    def test_stxr_fails_after_intervening_write(self):
        # T0: LDXR; T1 writes; T0: STXR -> must fail in that interleaving.
        t0 = ThreadBuilder(0)
        t0.ldxr("old", X).stxr("st", X, 99)
        t1 = ThreadBuilder(1)
        t1.store(X, 7)
        p = build_program([t0, t1], observed={0: ["st"]},
                          initial_memory={X: 0})
        res = explore_promising(p, observe_locs=[X])
        assert admits(res, t0_st=1)   # failure path exists
        assert admits(res, t0_st=0)   # success path exists
        # The failed STXR must not have written 99 over T1's 7.
        for beh in res.behaviors:
            regs = {(t, r): v for t, r, v in beh.registers}
            if regs[(0, "st")] == 1:
                assert dict(beh.memory)[X] == 7

    def test_stxr_without_monitor_fails(self):
        b = ThreadBuilder(0)
        b.stxr("st", X, 1)
        p = build_program([b], observed={0: ["st"]}, initial_memory={X: 0})
        res = explore_promising(p, observe_locs=[X])
        assert admits(res, t0_st=1)
        assert not admits(res, t0_st=0)
        finals = {dict(beh.memory)[X] for beh in res.behaviors}
        assert finals == {0}

    def test_llsc_counter_never_loses_updates(self):
        threads = []
        for tid in range(2):
            b = ThreadBuilder(tid)
            retry = b.fresh_label("retry")
            b.label(retry)
            b.ldxr("old", X)
            b.stxr("st", X, Reg("old") + 1)
            b.bnz(Reg("st"), retry)
            threads.append(b)
        p = build_program(threads, initial_memory={X: 0})
        res = explore_promising(p, observe_locs=[X])
        assert res.complete
        finals = {dict(beh.memory)[X] for beh in res.behaviors}
        assert finals == {2}


def test_clh_queue_lock_verifies():
    """The CLH queue lock (dynamic predecessor spin through a swapped
    tail pointer) verifies the full battery.  Not part of the default
    sweep: its state space is an order of magnitude larger than the
    flag locks' (see the checker-scalability benchmark for why).
    """
    from repro.sync import clh_lock

    result = verify_primitive(clh_lock(correct=True))
    assert result.verified, result.describe()
