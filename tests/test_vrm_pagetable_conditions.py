"""Tests for conditions 3-5: Write-Once, Transactional-Page-Table, and
Sequential-TLB-Invalidation."""

import pytest

from repro.errors import VerificationError
from repro.ir import PTKind, ThreadBuilder, build_program
from repro.ir.program import MMUConfig
from repro.mmu import MultiLevelPageTable, PageTableLayout
from repro.vrm import (
    audit_operation_writes,
    audit_write_log,
    check_program_transactional,
    check_sequential_tlb_invalidation,
    check_write_once,
    check_writes_transactional,
    enumerate_visibility_snapshots,
    extract_pt_write_sequences,
    kernel_pt_locations,
)

EL2_ENTRY_FREE = 0x2000
EL2_ENTRY_USED = 0x2001


class TestWriteOnce:
    def _program(self, target, init_value, twice=False):
        b = ThreadBuilder(0)
        b.pt_store(target, 0x300, kind=PTKind.KERNEL, level=0)
        if twice:
            b.pt_store(target, 0x301, kind=PTKind.KERNEL, level=0)
        return build_program(
            [b], initial_memory={target: init_value}, name="el2"
        )

    def test_fresh_entry_verifies(self):
        result = check_write_once(self._program(EL2_ENTRY_FREE, 0))
        assert result.verified

    def test_overwrite_of_nonempty_detected(self):
        result = check_write_once(self._program(EL2_ENTRY_USED, 0x111))
        assert not result.holds
        assert "overwritten" in result.violations[0]

    def test_double_write_detected(self):
        result = check_write_once(self._program(EL2_ENTRY_FREE, 0, twice=True))
        assert not result.holds
        assert "written 2 times" in " ".join(result.violations)

    def test_kernel_pt_locations_derived(self):
        p = self._program(EL2_ENTRY_FREE, 0)
        assert kernel_pt_locations(p) == {EL2_ENTRY_FREE}

    def test_no_kernel_pt_writes_trivially_holds(self):
        b = ThreadBuilder(0)
        b.mov("r0", 1)
        result = check_write_once(build_program([b]))
        assert result.verified

    def test_audit_write_log(self):
        pt = MultiLevelPageTable(levels=2, va_bits_per_level=4)
        pt.map(0x10, 1)
        pt.map(0x21, 2)
        assert audit_write_log(pt.write_log).verified
        pt.map(0x10, 3, overwrite=True)
        result = audit_write_log(pt.write_log)
        assert not result.holds


class TestTransactional:
    def _layout(self):
        layout = PageTableLayout(base=0x1000, levels=2, va_bits_per_level=2)
        layout.map(0x1, 0x80)
        return layout

    def test_visibility_snapshots_count(self):
        # Two writes to distinct locations: 2x2 = 4 snapshots.
        snaps = enumerate_visibility_snapshots({}, [(1, 10), (2, 20)])
        assert len(snaps) == 4

    def test_same_location_writes_keep_order(self):
        # Two writes to the same location: only 3 prefixes.
        snaps = enumerate_visibility_snapshots({}, [(1, 10), (1, 20)])
        assert len(snaps) == 3
        values = sorted(s.get(1, 0) for s in snaps)
        assert values == [0, 10, 20]

    def test_set_s2pt_insert_is_transactional(self):
        layout = self._layout()
        writes = [(loc, val) for loc, val, _ in layout.plan_map(0xD, 0x90)]
        result = check_writes_transactional(
            layout.initial_memory(), writes, layout.mmu_config(), range(16)
        )
        assert result.verified

    def test_unmap_then_write_under_is_not(self):
        layout = self._layout()
        pgd = layout.entry_path(0x1)[0]
        leaf_for_3 = layout.initial_memory()[pgd] + 3
        writes = [(pgd, 0), (leaf_for_3, 0x90)]
        result = check_writes_transactional(
            layout.initial_memory(), writes, layout.mmu_config(), range(16)
        )
        assert not result.holds
        assert "partial update" in result.violations[0]

    def test_single_write_always_transactional(self):
        layout = self._layout()
        leaf = layout.entry_path(0x1)[-1]
        result = check_writes_transactional(
            layout.initial_memory(), [(leaf, 0)], layout.mmu_config(), range(16)
        )
        assert result.verified

    def test_extract_sequences(self):
        layout = self._layout()
        b = ThreadBuilder(0)
        b.pt_store(0x1000, 5, kind=PTKind.STAGE2, level=0)
        b.pt_store(0x1001, 6, kind=PTKind.STAGE2, level=1)
        b.barrier("full")
        b.pt_store(0x1002, 7, kind=PTKind.STAGE2, level=1)
        p = build_program([b], mmu=layout.mmu_config())
        seqs = extract_pt_write_sequences(p)
        assert seqs == [[(0x1000, 5), (0x1001, 6)], [(0x1002, 7)]]

    def test_check_program_requires_probes_for_big_spaces(self):
        b = ThreadBuilder(0)
        b.pt_store(0x1000, 5, kind=PTKind.STAGE2, level=0)
        p = build_program(
            [b], mmu=MMUConfig(root=0x1000, levels=4, va_bits_per_level=9)
        )
        with pytest.raises(VerificationError):
            check_program_transactional(p)

    def test_program_without_mmu_trivially_holds(self):
        b = ThreadBuilder(0)
        b.mov("r0", 1)
        assert check_program_transactional(build_program([b])).verified

    def test_audit_operation_writes(self):
        pt = MultiLevelPageTable(levels=3, va_bits_per_level=4)
        mark = len(pt.write_log)
        pt.map(0x123, 0x50)
        assert audit_operation_writes(pt.write_log[mark:], "map").verified
        mark = len(pt.write_log)
        pt.unmap(0x123)
        assert audit_operation_writes(pt.write_log[mark:], "unmap").verified
        result = audit_operation_writes(pt.write_log[mark - 1:], "unmap")
        assert not result.holds  # two writes passed as one unmap

    def test_audit_rejects_unknown_operation(self):
        with pytest.raises(VerificationError):
            audit_operation_writes([], "remap")


class TestSequentialTLBInvalidation:
    def _program(self, barrier=True, tlbi=True, init=0x50):
        layout = PageTableLayout(base=0x1000, levels=1, va_bits_per_level=4)
        if init:
            layout.map(0x8, init)
        leaf = 0x1000 + 8
        b = ThreadBuilder(0)
        b.pt_store(leaf, 0, kind=PTKind.STAGE2, level=0)
        if barrier:
            b.barrier("full")
        if tlbi:
            b.tlbi(0x8)
        return build_program(
            [b], initial_memory=layout.initial_memory(),
            mmu=layout.mmu_config(),
        )

    def test_unmap_with_barrier_and_tlbi_verifies(self):
        assert check_sequential_tlb_invalidation(self._program()).verified

    def test_missing_tlbi_detected(self):
        result = check_sequential_tlb_invalidation(self._program(tlbi=False))
        assert not result.holds

    def test_missing_barrier_detected(self):
        result = check_sequential_tlb_invalidation(self._program(barrier=False))
        assert not result.holds

    def test_write_to_empty_entry_needs_no_tlbi(self):
        result = check_sequential_tlb_invalidation(
            self._program(barrier=False, tlbi=False, init=0)
        )
        assert result.verified

    def test_second_write_to_same_entry_counts_as_remap(self):
        layout = PageTableLayout(base=0x1000, levels=1, va_bits_per_level=4)
        leaf = 0x1000 + 8
        b = ThreadBuilder(0)
        b.pt_store(leaf, 0x50, kind=PTKind.STAGE2, level=0)   # fills empty
        b.pt_store(leaf, 0x60, kind=PTKind.STAGE2, level=0)   # remap!
        p = build_program([b], initial_memory=layout.initial_memory(),
                          mmu=layout.mmu_config())
        result = check_sequential_tlb_invalidation(p)
        assert not result.holds
