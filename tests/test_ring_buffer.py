"""The SPSC ring buffer as a verification subject (a new system the
paper never checked — the downstream-adoption scenario)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLE = Path(__file__).resolve().parents[1] / "examples" / "verify_your_own_kernel.py"
spec = importlib.util.spec_from_file_location("ring_example", EXAMPLE)
ring_example = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ring_example)

from repro.memory import admits, compare_models, explore_promising
from repro.vrm import (
    check_drf_kernel,
    check_no_barrier_misuse,
    check_theorem2,
)

SLOTS = [ring_example.SLOT0, ring_example.SLOT1]


class TestRingBuffer:
    def test_relacq_ring_is_robust(self):
        program = ring_example.ring_buffer_program(correct=True)
        cmp = compare_models(program)
        assert cmp.equivalent and cmp.complete
        rm = explore_promising(program)
        assert admits(rm, t1_got0=7, t1_got1=9)
        assert len(rm.behaviors) == 1   # exactly the FIFO outcome

    def test_plain_ring_loses_data_on_rm(self):
        program = ring_example.ring_buffer_program(correct=False)
        cmp = compare_models(program)
        assert not cmp.equivalent
        rm = explore_promising(program)
        assert admits(rm, t1_got0=0)    # consumer saw an empty slot

    def test_wdrf_conditions_decide_both_variants(self):
        good = ring_example.ring_buffer_program(correct=True)
        assert check_drf_kernel(good, SLOTS).verified
        assert check_no_barrier_misuse(good, SLOTS).verified
        assert check_theorem2(good).verified

        bad = ring_example.ring_buffer_program(correct=False)
        assert not check_drf_kernel(bad, SLOTS).holds
        assert not check_no_barrier_misuse(bad, SLOTS).holds
        assert not check_theorem2(bad).holds

    def test_ownership_ping_pongs_without_locks(self):
        """The ring is correctly synchronized with no lock at all — the
        ownership discipline is carried entirely by index publication."""
        program = ring_example.ring_buffer_program(correct=True)
        from repro.memory import explore_pushpull

        result = explore_pushpull(program, owned_access_required=SLOTS)
        assert result.panic_free and result.complete

    def test_example_script_runs(self, capsys):
        ring_example.main()
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "REJECTED" in out
        assert "promise" in out
