"""The litmus corpus: every test must match its architectural
expectation on both hardware models.

This is the primary validation that the Promising Arm implementation
is neither too weak (missing allowed behaviors) nor too strong
(admitting forbidden ones) — the executable counterpart of the paper's
reliance on the proven Promising-Arm/Armv8 equivalence.
"""

import pytest

from repro.litmus import (
    classic_corpus,
    extended_corpus,
    full_corpus,
    paper_examples,
    run_litmus,
)

CLASSIC = classic_corpus()
EXTENDED = extended_corpus()
PAPER = paper_examples()


@pytest.mark.parametrize("test", CLASSIC, ids=[t.name for t in CLASSIC])
def test_classic_litmus(test):
    outcome = run_litmus(test)
    assert outcome.sc.complete and outcome.rm.complete
    assert outcome.observed_sc == test.allowed_sc, (
        f"{test.name}: SC observability mismatch\n" + outcome.describe()
    )
    assert outcome.observed_rm == test.allowed_rm, (
        f"{test.name}: RM observability mismatch\n" + outcome.describe()
    )


@pytest.mark.parametrize("test", EXTENDED, ids=[t.name for t in EXTENDED])
def test_extended_litmus(test):
    """Coherence-order probes (S/R/2+2W/ISA2/SB+rel-acq shapes)."""
    outcome = run_litmus(test)
    assert outcome.passed, outcome.describe()


@pytest.mark.parametrize("test", PAPER, ids=[t.name for t in PAPER])
def test_paper_examples(test):
    outcome = run_litmus(test)
    assert outcome.passed, outcome.describe()


def test_every_buggy_example_is_rm_only():
    """Each buggy Section-2 variant exhibits an outcome on relaxed
    hardware that SC verification would certify as impossible."""
    buggy = [t for t in PAPER if t.exposes_rm_bug]
    assert len(buggy) >= 5  # Examples 1-6 variants at minimum
    for test in buggy:
        outcome = run_litmus(test)
        assert outcome.observed_rm and not outcome.observed_sc, test.name


def test_every_fixed_example_has_no_rm_only_outcome():
    fixed = [
        t for t in PAPER
        if "fixed" in t.name or "transactional" in t.name
        or "barrier]" in t.name or "oracle" in t.name
    ]
    assert fixed
    for test in fixed:
        outcome = run_litmus(test)
        assert outcome.observed_rm == outcome.observed_sc, test.name


def test_corpus_report_format():
    from repro.litmus import corpus_report, run_corpus

    outcomes = run_corpus(CLASSIC[:3])
    report = corpus_report(outcomes)
    assert "3/3" in report
