"""Property-based tests (hypothesis) on core data structures and the
framework's central invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir import Reg, ThreadBuilder, build_program
from repro.memory import explore_promising, explore_sc
from repro.memory.datatypes import Message, last_write_ts, latest_write_ts
from repro.memory.state import tdel, tget, tset
from repro.mmu import MultiLevelPageTable, PageTableLayout, TLB, walk_memory
from repro.vrm.transactional import enumerate_visibility_snapshots

# ---------------------------------------------------------------------------
# pair-tuple mapping laws
# ---------------------------------------------------------------------------

keys = st.integers(min_value=0, max_value=20)
values = st.integers(min_value=-100, max_value=100)


@given(st.lists(st.tuples(keys, values), max_size=10), keys, values)
def test_tset_then_tget_roundtrip(items, key, value):
    pairs = ()
    for k, v in items:
        pairs = tset(pairs, k, v)
    updated = tset(pairs, key, value)
    assert tget(updated, key) == value
    # Everything else preserved.
    for k, _ in items:
        if k != key:
            assert tget(updated, k) == tget(pairs, k)


@given(st.lists(st.tuples(keys, values), max_size=10), keys)
def test_tdel_removes_exactly_key(items, key):
    pairs = ()
    for k, v in items:
        pairs = tset(pairs, k, v)
    removed = tdel(pairs, key)
    assert tget(removed, key, None) is None
    for k, _ in items:
        if k != key:
            assert tget(removed, k) == tget(pairs, k)


@given(st.lists(st.tuples(keys, values), max_size=10))
def test_tset_keeps_sorted_unique(items):
    pairs = ()
    for k, v in items:
        pairs = tset(pairs, k, v)
    ks = [k for k, _ in pairs]
    assert ks == sorted(set(ks))


# ---------------------------------------------------------------------------
# timeline queries
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 9)), max_size=12
    ),
    st.integers(0, 3),
)
def test_last_write_monotone_in_upto(writes, loc):
    memory = tuple(
        Message(ts=i + 1, loc=l, val=v, tid=0) for i, (l, v) in enumerate(writes)
    )
    previous = 0
    for upto in range(len(memory) + 1):
        ts = last_write_ts(memory, loc, upto)
        assert ts >= previous
        assert ts <= upto
        previous = ts
    assert latest_write_ts(memory, loc) == last_write_ts(
        memory, loc, len(memory)
    )


# ---------------------------------------------------------------------------
# page tables
# ---------------------------------------------------------------------------

@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.dictionaries(
        st.integers(0, 63), st.integers(1, 1000), min_size=1, max_size=20
    ),
    st.integers(2, 4),
)
def test_functional_pagetable_walk_matches_mappings(mapping, levels):
    pt = MultiLevelPageTable(levels=levels, va_bits_per_level=3)
    for vpn, pfn in mapping.items():
        pt.map(vpn, pfn)
    assert dict(pt.mappings()) == mapping
    for vpn, pfn in mapping.items():
        assert pt.walk(vpn) == pfn
    missing = next(v for v in range(64) if v not in mapping)
    assert pt.walk(missing) is None


def test_out_of_range_vpn_rejected():
    from repro.errors import ProgramError

    pt = MultiLevelPageTable(levels=2, va_bits_per_level=3)
    with pytest.raises(ProgramError):
        pt.map(64, 1)   # address space is 2^6


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.dictionaries(
        st.integers(0, 63), st.integers(1, 1000), min_size=1, max_size=12
    )
)
def test_layout_and_functional_pagetable_agree(mapping):
    layout = PageTableLayout(base=0x10000, levels=2, va_bits_per_level=3)
    pt = MultiLevelPageTable(levels=2, va_bits_per_level=3)
    for vpn, pfn in mapping.items():
        layout.map(vpn, pfn)
        pt.map(vpn, pfn)
    for vpn in range(64):
        flat = walk_memory(layout.memory, layout.mmu_config(), vpn)
        tree = pt.walk(vpn)
        if tree is None:
            assert flat.is_fault
        else:
            assert flat.ppage == tree


@settings(deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 63)), max_size=40),
    st.integers(1, 8),
)
def test_tlb_never_exceeds_capacity_and_serves_inserted(accesses, capacity):
    tlb = TLB(entries=capacity)
    for asid, vpn in accesses:
        if tlb.lookup(asid, vpn) is None:
            tlb.insert(asid, vpn, vpn + 1000)
        assert len(tlb) <= capacity
    # A hit always returns what was inserted.
    for asid, vpn in accesses:
        hit = tlb.lookup(asid, vpn)
        if hit is not None:
            assert hit == vpn + 1000


# ---------------------------------------------------------------------------
# transactional-visibility enumeration
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 9)), max_size=5
    )
)
def test_visibility_snapshots_contain_pre_and_post(writes):
    initial = {0: 100, 1: 101, 2: 102, 3: 103}
    snaps = enumerate_visibility_snapshots(initial, writes)
    post = dict(initial)
    for loc, val in writes:
        post[loc] = val
    assert initial in snaps
    assert post in snaps


@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(1, 9)), max_size=5
    )
)
def test_visibility_snapshot_count(writes):
    from math import prod

    by_loc = {}
    for loc, _ in writes:
        by_loc[loc] = by_loc.get(loc, 0) + 1
    expected = prod(n + 1 for n in by_loc.values()) if by_loc else 1
    assert len(enumerate_visibility_snapshots({}, writes)) == expected


# ---------------------------------------------------------------------------
# the framework's central invariant: SC ⊆ RM on arbitrary small programs
# ---------------------------------------------------------------------------

_ops = st.sampled_from(["load", "store", "store_rel", "load_acq", "barrier", "faa"])


def _build_thread(tid, ops):
    b = ThreadBuilder(tid)
    for i, (op, loc_idx, val) in enumerate(ops):
        loc = 0x100 + loc_idx
        if op == "load":
            b.load(f"r{i}", loc)
        elif op == "load_acq":
            b.load(f"r{i}", loc, acquire=True)
        elif op == "store":
            b.store(loc, val)
        elif op == "store_rel":
            b.store(loc, val, release=True)
        elif op == "faa":
            b.faa(f"r{i}", loc)
        elif op == "barrier":
            b.barrier("full")
    observed = [f"r{i}" for i, (op, _, _) in enumerate(ops)
                if op in ("load", "load_acq", "faa")]
    return b, observed


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.tuples(_ops, st.integers(0, 1), st.integers(0, 2)),
             min_size=1, max_size=3),
    st.lists(st.tuples(_ops, st.integers(0, 1), st.integers(0, 2)),
             min_size=1, max_size=3),
)
def test_sc_behaviors_subset_of_promising(ops0, ops1):
    """Every SC behavior of every program is a Promising Arm behavior:
    the relaxed model only ever *adds* outcomes."""
    b0, obs0 = _build_thread(0, ops0)
    b1, obs1 = _build_thread(1, ops1)
    program = build_program(
        [b0, b1],
        observed={0: obs0, 1: obs1},
        initial_memory={0x100: 0, 0x101: 0},
    )
    sc = explore_sc(program)
    rm = explore_promising(program)
    assert sc.complete and rm.complete
    assert sc.behaviors <= rm.behaviors


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 3), st.integers(0, 5))
def test_faa_values_form_permutation(n_threads, init):
    """Atomic increments return distinct consecutive values under any
    model — the uniqueness the paper's gen_vmid relies on."""
    threads = []
    for tid in range(n_threads):
        b = ThreadBuilder(tid)
        b.faa(f"t{tid}", 0x100)
        threads.append(b)
    program = build_program(
        threads,
        observed={tid: [f"t{tid}"] for tid in range(n_threads)},
        initial_memory={0x100: init},
    )
    rm = explore_promising(program)
    expected = set(range(init, init + n_threads))
    for behavior in rm.behaviors:
        got = {v for _, _, v in behavior.registers}
        assert got == expected
