"""Tier-1 tests for the differential conformance harness.

The fixed-seed suite is the promoted form of the fuzzing benchmark's
smoke coverage: ~50 deterministic programs through the full oracle
matrix on every test run, plus unit tests for the pieces the fuzzing
loop is built from — genome serialization, generation determinism, the
delta-debugging shrinker (minimality, determinism, budget), and corpus
persistence/replay.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.conformance import (
    PROFILES,
    CoverageMap,
    FuzzConfig,
    Genome,
    OpSpec,
    build,
    check_genome,
    derive_rng,
    engine_fingerprint,
    iter_corpus,
    mutate,
    oracles_for,
    random_genome,
    replay_entry,
    run_fuzz,
    shrink,
    valid,
)
from repro.memory import mutants


class TestGenome:
    def test_json_round_trip(self):
        rng = derive_rng(5, "round-trip")
        for profile in PROFILES:
            genome = random_genome(profile, rng)
            again = Genome.from_json(
                json.loads(json.dumps(genome.to_json()))
            )
            assert again == genome

    def test_generation_is_deterministic(self):
        for profile in PROFILES:
            a = random_genome(profile, derive_rng(9, "gen", 3))
            b = random_genome(profile, derive_rng(9, "gen", 3))
            assert a == b
            assert repr(build(a)) == repr(build(b))

    def test_derive_rng_streams_are_independent(self):
        draws_a = [derive_rng(1, "x", i).random() for i in range(4)]
        draws_b = [derive_rng(1, "y", i).random() for i in range(4)]
        assert draws_a != draws_b
        assert len(set(draws_a)) == 4

    def test_mutation_preserves_validity(self):
        for profile in PROFILES:
            rng = derive_rng(2, "mut", profile)
            genome = random_genome(profile, rng)
            for _ in range(50):
                genome = mutate(genome, rng)
                assert valid(genome)
                build(genome)  # must always lower cleanly

    def test_sync_genomes_always_instrumented(self):
        rng = derive_rng(3, "sync")
        for _ in range(20):
            genome = random_genome("sync", rng)
            assert any(
                op.kind == "pull" for ops in genome.threads for op in ops
            )

    def test_fenced_build_inserts_barriers(self):
        genome = Genome(
            profile="fenced",
            threads=((OpSpec("store", 0, 1), OpSpec("load", 1, 1)),),
        )
        program = build(genome)
        kinds = [type(i).__name__ for i in program.threads[0].instrs]
        assert kinds == ["Store", "Barrier", "Load", "Barrier"]


class TestFixedSeedSuite:
    def test_fifty_programs_all_oracles_agree(self):
        report = run_fuzz(FuzzConfig(seed=0, budget=50, heavy_every=8))
        assert report.programs == 50
        assert report.ok, "\n".join(f.describe() for f in report.findings)
        # The run exercised every profile and did real exploration work.
        profiles_seen = {shape[0] for shape in report.coverage.shapes}
        assert profiles_seen == set(PROFILES)
        assert report.coverage.states_explored > 0

    def test_run_is_deterministic(self):
        a = run_fuzz(FuzzConfig(seed=7, budget=12))
        b = run_fuzz(FuzzConfig(seed=7, budget=12))
        assert a.ok and b.ok
        assert a.coverage.fingerprint() == b.coverage.fingerprint()
        assert a.programs == b.programs

    def test_oracle_selection_per_profile(self):
        assert "equivalence" in oracles_for("fenced")
        assert "equivalence" not in oracles_for("plain")
        assert oracles_for("sync") == ("monitor",)
        assert "fuse" in oracles_for("sync", heavy=True)
        assert "jobs" in oracles_for("plain", heavy=True)

    def test_minutes_deadline_stops_the_loop(self):
        report = run_fuzz(FuzzConfig(seed=0, budget=None, minutes=1e-9))
        assert report.programs == 0


def _two_op_predicate(genome):
    """Synthetic shrink target: a store in thread 0 and a load in
    thread 1 (at any location) — minimal witness is exactly 2 ops."""
    if len(genome.threads) < 2:
        return False
    has_store = any(op.kind == "store" for op in genome.threads[0])
    has_load = any(op.kind == "load" for op in genome.threads[1])
    return has_store and has_load


class TestShrinker:
    def _bloated(self):
        ops0 = tuple(
            OpSpec(k, loc, v) for k, loc, v in [
                ("load", 1, 2), ("store", 1, 3), ("barrier_full", 0, 1),
                ("store", 0, 2), ("load", 0, 1),
            ]
        )
        ops1 = tuple(
            OpSpec(k, loc, v) for k, loc, v in [
                ("store", 1, 2), ("load", 1, 3), ("load", 0, 2),
                ("barrier_st", 0, 1),
            ]
        )
        return Genome(profile="plain", threads=(ops0, ops1))

    def test_shrinks_to_minimal_witness(self):
        result = shrink(self._bloated(), predicate=_two_op_predicate)
        assert result.size == 2
        assert _two_op_predicate(result.genome)
        kinds = [
            op.kind for ops in result.genome.threads for op in ops
        ]
        assert sorted(kinds) == ["load", "store"]

    def test_one_minimality(self):
        result = shrink(self._bloated(), predicate=_two_op_predicate)
        positions = [
            (t, i)
            for t, ops in enumerate(result.genome.threads)
            for i in range(len(ops))
        ]
        from repro.conformance.shrink import _without

        for pos in positions:
            assert not _two_op_predicate(_without(result.genome, [pos]))

    def test_shrink_is_deterministic(self):
        a = shrink(self._bloated(), predicate=_two_op_predicate)
        b = shrink(self._bloated(), predicate=_two_op_predicate)
        assert a.genome == b.genome
        assert a.evals == b.evals

    def test_operand_simplification(self):
        result = shrink(self._bloated(), predicate=_two_op_predicate)
        for ops in result.genome.threads:
            for op in ops:
                assert op.val == 1
                assert op.loc == 0

    def test_eval_budget_is_respected(self):
        result = shrink(
            self._bloated(), predicate=_two_op_predicate, max_evals=3
        )
        assert result.evals <= 3
        assert _two_op_predicate(result.genome)

    def test_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            shrink(self._bloated())
        with pytest.raises(ValueError):
            shrink(
                self._bloated(), predicate=_two_op_predicate,
                oracle="containment",
            )


class TestCorpusReplay:
    def test_finding_round_trips_through_corpus(self, tmp_path):
        with mutants.seeded("weaken-barrier-full"):
            report = run_fuzz(FuzzConfig(
                seed=0, budget=40, profiles=("fenced",),
                corpus_dir=str(tmp_path), max_findings=1,
            ))
            assert report.findings, "seeded barrier bug was not detected"
            entries = list(iter_corpus(str(tmp_path)))
            assert entries
            path, entry = entries[0]
            # Either cross-model oracle may be first to see the
            # weakened barrier: fenced-vs-SC equivalence, or the BMC
            # backend (whose encoding keeps the honest barrier).
            assert entry["oracle"] in ("equivalence", "backend")
            assert entry["engine"]["mutants"] == "weaken-barrier-full"
            # Replay under the same (mutated) engine reproduces it...
            assert replay_entry(entry)
        # ...and under the honest engine it is gone, with the engine
        # fingerprint explaining why.
        assert not replay_entry(entry)
        assert engine_fingerprint()["mutants"] == ""

    def test_shrunk_genome_is_persisted_and_replayable(self, tmp_path):
        with mutants.seeded("weaken-barrier-full"):
            report = run_fuzz(FuzzConfig(
                seed=0, budget=40, profiles=("fenced",),
                corpus_dir=str(tmp_path), max_findings=1,
            ))
            _, entry = next(iter_corpus(str(tmp_path)))
            assert entry["shrunk_genome"] is not None
            shrunk = Genome.from_json(entry["shrunk_genome"])
            assert shrunk.size() <= Genome.from_json(entry["genome"]).size()
            assert check_genome(shrunk, oracles=(entry["oracle"],))


class TestCoverage:
    def test_coverage_reports_new_territory(self):
        cov = CoverageMap()
        genome = random_genome("plain", derive_rng(0, "cov"))
        assert cov.observe(genome) is True
        assert cov.observe(genome) is False
        assert cov.programs == 2

    def test_merge_is_a_union(self):
        a, b = CoverageMap(), CoverageMap()
        a.observe(random_genome("plain", derive_rng(0, "a")))
        b.observe(random_genome("sync", derive_rng(0, "b")))
        before = a.fingerprint()
        a.merge(b)
        assert a.programs == 2
        assert a.fingerprint() >= before


class TestFuzzCLI:
    def test_exit_zero_on_agreement(self, capsys):
        assert cli_main(["fuzz", "--budget", "4", "--jobs", "1"]) == 0
        assert "all oracles agreed" in capsys.readouterr().out
