"""Tier-1 tests for the SAT/BMC verification backend.

Three layers of agreement evidence, mirroring the conformance
discipline the exploration optimizations use:

* encoder edge cases (empty threads, depth bounds, fragment gates),
* verdict equality against exploration over the full litmus catalog,
  the wDRF checkers, and a fuzzed genome sweep,
* the cost-model router's policy under forced features, plus the
  bench-surface satellites (``--only bmc`` timing, single-core speedup
  annotation).
"""

import pytest

from repro.conformance import build, check_genome, derive_rng, random_genome
from repro.ir import PTKind, ThreadBuilder, build_program
from repro.litmus.catalog import classic_corpus, full_corpus
from repro.litmus.runner import SC_CFG, rm_config, run_litmus
from repro.memory.cache import bmc_query_key, cached_explore, exploration_key
from repro.memory.semantics import ModelConfig
from repro.memory.trace import ExecutionTrace
from repro.parallel.bench import (
    _speedup,
    _time_bmc_litmus,
    bmc_explosion_spec,
    format_bench,
)
from repro.smt import (
    BmcStats,
    ProgramEncoding,
    Unsupported,
    backend_check_enabled,
    backend_default,
    bmc_behaviors,
    bmc_condition_results,
    bmc_explore,
    bmc_supported,
    bmc_witness_trace,
    decide,
    route,
)
from repro.smt.encode import quick_unsupported
from repro.smt.router import features_of
from repro.vrm import verify_wdrf
from repro.vrm.conditions import PassRequest, WDRFCondition
from repro.vrm.verifier import VerifyStats, WDRFSpec
from repro.vrm.write_once import WriteOnceMonitor

RM_CFG = rm_config(2)

VIOLATING_LOC = 0x400


def violating_pt_program():
    """Two CPUs write the same kernel PT entry: write-once must fail."""
    threads = []
    init = {VIOLATING_LOC: 0}
    for t in range(2):
        tb = ThreadBuilder(t)
        tb.store(VIOLATING_LOC, t + 1, pt_kind=PTKind.KERNEL)
        threads.append(tb)
    return build_program(
        threads, initial_memory=init, name="pt-write-twice"
    )


def staged_pt_program():
    """Private store first, conflicting store second (depth-bound prey)."""
    threads = []
    init = {VIOLATING_LOC: 0}
    for t in range(2):
        tb = ThreadBuilder(t)
        private = 0x500 + t
        tb.store(private, 1, pt_kind=PTKind.KERNEL)
        init[private] = 0
        tb.store(VIOLATING_LOC, t + 1, pt_kind=PTKind.KERNEL)
        threads.append(tb)
    return build_program(
        threads, initial_memory=init, name="pt-write-twice-staged"
    )


def write_once_requests(program, cfg):
    locs = sorted(program.initial_memory)
    monitor = WriteOnceMonitor(dict(program.initial_memory), locs)
    return [
        ("write_once", PassRequest(cfg=cfg, observe_locs=(), monitor=monitor))
    ]


class TestEncoderEdges:
    def test_accessless_thread_yields_single_initial_behavior(self):
        tb = ThreadBuilder(0)
        tb.barrier("full")
        program = build_program(
            [tb], initial_memory={0x10: 7}, name="no-accesses"
        )
        got = bmc_behaviors(program, SC_CFG, cache=False)
        want = cached_explore(program, SC_CFG, cache=False).behaviors
        assert got == want
        (behavior,) = got
        assert dict(behavior.memory) == {0x10: 7}

    def test_depth_zero_refuses_behavior_enumeration(self, monkeypatch):
        monkeypatch.setenv("REPRO_BMC_DEPTH", "0")
        with pytest.raises(Unsupported):
            bmc_behaviors(violating_pt_program(), SC_CFG, cache=False)

    def test_depth_bound_reports_non_exhaustive_clean_verdict(
        self, monkeypatch
    ):
        program = staged_pt_program()
        monkeypatch.setenv("REPRO_BMC_DEPTH", "1")
        monkeypatch.delenv("REPRO_BMC_INDUCTION", raising=False)
        results = bmc_condition_results(
            program, SC_CFG, write_once_requests(program, SC_CFG),
            cache=False,
        )
        verdict = results["write_once"]
        # The conflicting second stores are beyond the bound: clean,
        # but only up to depth 1.
        assert verdict.holds and not verdict.exhaustive

    def test_induction_ladder_recovers_the_violation(self, monkeypatch):
        program = staged_pt_program()
        monkeypatch.setenv("REPRO_BMC_DEPTH", "1")
        monkeypatch.setenv("REPRO_BMC_INDUCTION", "1")
        results = bmc_condition_results(
            program, SC_CFG, write_once_requests(program, SC_CFG),
            cache=False,
        )
        verdict = results["write_once"]
        assert not verdict.holds and verdict.exhaustive
        assert any("written 2 times" in v for v in verdict.violations)

    def test_atomics_are_outside_the_fragment(self):
        tb = ThreadBuilder(0)
        tb.faa("r0", 0x10)
        program = build_program(
            [tb], initial_memory={0x10: 0}, name="atomic"
        )
        assert quick_unsupported(program, SC_CFG) is not None
        assert bmc_supported(program, SC_CFG) is not None
        with pytest.raises(Unsupported):
            ProgramEncoding(program, SC_CFG)

    def test_unknown_monitor_kind_is_gated(self):
        class Odd:
            kind = "weird"

        program = violating_pt_program()
        reason = bmc_supported(program, SC_CFG, [Odd()])
        assert reason is not None and "weird" in reason

    def test_event_cap_is_enforced(self):
        tb = ThreadBuilder(0)
        for i in range(40):
            tb.store(0x1000 + i, 1)
        program = build_program(
            [tb],
            initial_memory={0x1000 + i: 0 for i in range(40)},
            name="too-big",
        )
        assert quick_unsupported(program, SC_CFG) is not None


class TestLitmusAgreement:
    def test_full_catalog_behavior_sets_agree(self):
        compared = 0
        for test in full_corpus():
            observe = sorted(loc for loc, _ in test.memory_condition)
            for cfg in (SC_CFG, rm_config(test.max_promises)):
                if bmc_supported(test.program, cfg) is not None:
                    continue
                try:
                    solved = bmc_explore(
                        test.program, cfg, observe, cache=False
                    )
                except Unsupported:
                    continue
                explored = cached_explore(
                    test.program, cfg, observe_locs=observe
                )
                assert solved.behaviors == explored.behaviors, test.name
                assert solved.complete and solved.states_explored == 0
                compared += 1
        # The sweep must stay substantial, or the oracle is vacuous.
        assert compared >= 40

    def test_forced_bmc_passes_classic_tests(self):
        for test in classic_corpus()[:8]:
            outcome = run_litmus(test, cache=False, backend="bmc")
            assert outcome.passed, outcome.describe()

    def test_backend_check_mode_agrees_end_to_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_CHECK", "1")
        assert backend_check_enabled()
        for test in classic_corpus()[:4]:
            outcome = run_litmus(test, cache=False, backend="auto")
            assert outcome.passed, outcome.describe()


class TestConditionBackend:
    def _verify(self, spec, monkeypatch, backend):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        monkeypatch.setenv("REPRO_BACKEND_CHECK", "0")
        monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")
        return verify_wdrf(spec)

    def test_bmc_and_exploration_verdicts_match(self, monkeypatch):
        spec = WDRFSpec(
            program=violating_pt_program(),
            kernel_pt_locs=(VIOLATING_LOC,),
        )
        explored = self._verify(spec, monkeypatch, "explore")
        solved = self._verify(spec, monkeypatch, "bmc")
        assert set(explored.results) == set(solved.results)
        for cond, want in explored.results.items():
            got = solved.results[cond]
            assert got.holds == want.holds, cond
            assert got.exhaustive == want.exhaustive, cond
        w = solved.results[WDRFCondition.WRITE_ONCE_KERNEL_MAPPING]
        assert not w.holds
        # Violation strings mirror the monitor's audit format exactly.
        assert w.violations == explored.results[
            WDRFCondition.WRITE_ONCE_KERNEL_MAPPING
        ].violations

    def test_check_mode_runs_both_and_agrees(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        monkeypatch.setenv("REPRO_BACKEND_CHECK", "1")
        monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")
        spec = WDRFSpec(
            program=violating_pt_program(),
            kernel_pt_locs=(VIOLATING_LOC,),
        )
        stats = VerifyStats()
        report = verify_wdrf(spec, collect=stats)
        assert not report.all_hold
        assert stats.bmc_passes >= 1
        assert stats.as_dict()["bmc_passes"] == stats.bmc_passes

    def test_witness_replays_into_operational_trace(self):
        program = violating_pt_program()
        monitor = WriteOnceMonitor({VIOLATING_LOC: 0}, [VIOLATING_LOC])
        trace = bmc_witness_trace(program, SC_CFG, monitor)
        assert isinstance(trace, ExecutionTrace)
        assert trace.events
        hits = [
            msg for msg in trace.final_state.memory
            if msg.loc == VIOLATING_LOC
        ]
        assert len(hits) == 2  # the double write the solver found

    def test_witness_is_none_for_trivial_kinds(self):
        class Trivial:
            kind = "drf_kernel"

        assert (
            bmc_witness_trace(violating_pt_program(), SC_CFG, Trivial())
            is None
        )


class TestRouter:
    def test_cached_exploration_always_wins(self):
        decision = decide(
            {"cached_states": 512.0, "est_log10_states": 9.0}
        )
        assert decision.backend == "explore"
        assert "cached" in decision.reason

    def test_explosive_estimates_route_to_bmc(self):
        decision = decide(
            {"cached_states": -1.0, "est_log10_states": 6.5}
        )
        assert decision.backend == "bmc"

    def test_small_programs_stay_on_exploration(self):
        decision = decide(
            {"cached_states": -1.0, "est_log10_states": 1.2}
        )
        assert decision.backend == "explore"

    def test_backend_default_validates_the_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_default() == "explore"
        monkeypatch.setenv("REPRO_BACKEND", "bmc")
        assert backend_default() == "bmc"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError):
            backend_default()

    def test_route_falls_back_outside_the_fragment(self):
        tb = ThreadBuilder(0)
        tb.faa("r0", 0x10)
        program = build_program(
            [tb], initial_memory={0x10: 0}, name="atomic-route"
        )
        decision = route(program, SC_CFG)
        assert decision.backend == "explore"
        assert decision.reason.startswith("BMC unsupported")

    def test_explosion_spec_features_cross_the_threshold(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")
        program = bmc_explosion_spec().program
        features = features_of(program, ModelConfig(relaxed=True))
        assert features["promisable_stores"] >= 6
        assert features["est_log10_states"] >= 3.0
        assert decide(features).backend == "bmc"


class TestCacheAxis:
    def test_backend_axis_separates_cache_keys(self):
        program = violating_pt_program()
        base = exploration_key(program, SC_CFG, None, False, True)
        bmc = exploration_key(
            program, SC_CFG, None, False, True, backend="bmc"
        )
        assert base != bmc

    def test_bmc_query_keys_depend_on_the_query(self):
        program = violating_pt_program()
        a = bmc_query_key(program, SC_CFG, (), "behaviors")
        b = bmc_query_key(program, SC_CFG, (), "conditions:x")
        assert a != b


class TestFuzzedAgreement:
    @pytest.mark.parametrize("profile", ["plain", "fenced"])
    def test_backend_oracle_over_fuzzed_genomes(self, profile):
        # >= 50 genomes across the two encodable profiles (28 each).
        for i in range(28):
            genome = random_genome(
                profile, derive_rng(20260808, "bmc", profile, i),
                name=f"bmc-{i}",
            )
            disagreements = check_genome(genome, oracles=("backend",))
            assert not disagreements, (
                genome,
                [d.describe() for d in disagreements],
            )


class TestBenchSatellites:
    def test_speedup_degraded_annotation_only_on_single_core(
        self, monkeypatch
    ):
        import repro.parallel.bench as bench

        monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
        single = _speedup(2.0, 1.0)
        assert single["degraded"] == "single-core-runner"
        monkeypatch.setattr(bench.os, "cpu_count", lambda: 8)
        multi = _speedup(2.0, 1.0)
        assert "degraded" not in multi
        assert multi["ratio"] == 2.0 and multi["cpu_count"] == 8

    def test_bmc_litmus_sweep_reports_solver_throughput(self):
        sweep = _time_bmc_litmus()
        assert sweep["queries_solved"] >= 40
        assert sweep["clauses_per_second"] > 0
        assert sweep["outcomes"] > 0
        assert sweep["encodings"] == sweep["queries_solved"]

    def test_format_bench_renders_the_bmc_section(self):
        results = {
            "schema": "BENCH_exploration/v5",
            "cpu_count": 1,
            "jobs": 1,
            "shard_jobs": 2,
            "bmc": {
                "cpu_count": 1,
                "explosion_spec": {
                    "auto": {"wall_seconds": 0.03, "bmc_passes": 2},
                    "explore": {"wall_seconds": 3.0, "states": 112000},
                    "router_speedup": 100.0,
                },
                "litmus_solver": {
                    "queries_solved": 44,
                    "wall_seconds": 0.05,
                    "clauses_per_second": 88000.0,
                    "outcomes": 144,
                },
            },
        }
        text = format_bench(results)
        assert "bmc router" in text and "bmc solver" in text
        assert "100.0x" in text


class TestStats:
    def test_bmc_stats_accumulate_across_queries(self):
        stats = BmcStats()
        program = violating_pt_program()
        bmc_behaviors(program, SC_CFG, cache=False, stats=stats)
        assert stats.encodings == 1
        assert stats.clauses > 0 and stats.variables > 0
        assert stats.outcomes >= 1
        d = stats.as_dict()
        assert d["encodings"] == 1 and d["solve_calls"] >= 1
