"""White-box tests for virtual-memory execution: translation paths,
TLB refills/evictions, walker staleness, and the walker floor."""

import pytest

from repro.errors import ExecutionError
from repro.ir import PTKind, ThreadBuilder, build_program
from repro.memory import admits, explore, explore_promising, explore_sc
from repro.memory.semantics import ModelConfig, PROMISING_ARM, SC
from repro.mmu import PageTableLayout

PAGE_A, PAGE_B = 0x40, 0x50


def layout_with(vpn=0x8, ppage=PAGE_A, levels=1):
    layout = PageTableLayout(base=0x1000, levels=levels, va_bits_per_level=4)
    layout.map(vpn, ppage)
    return layout


class TestTranslation:
    def test_vload_without_mmu_config_raises(self):
        b = ThreadBuilder(0)
        b.vload("r0", 0x8)
        program = build_program([b])
        with pytest.raises(ExecutionError):
            explore_sc(program)

    def test_successful_translation_reads_frame(self):
        layout = layout_with()
        init = layout.initial_memory()
        init[PAGE_A] = 7
        b = ThreadBuilder(0, is_kernel=False)
        b.vload("r0", 0x8)
        program = build_program([b], observed={0: ["r0"]},
                                initial_memory=init,
                                mmu=layout.mmu_config())
        res = explore_sc(program)
        assert admits(res, t0_r0=7)
        assert len(res.behaviors) == 1

    def test_unmapped_translation_faults_and_halts(self):
        layout = layout_with()
        b = ThreadBuilder(0, is_kernel=False)
        b.vload("r0", 0x9).mov("after", 1)
        program = build_program([b], observed={0: ["after"]},
                                initial_memory=layout.initial_memory(),
                                mmu=layout.mmu_config())
        res = explore_sc(program)
        (behavior,) = res.behaviors
        assert behavior.faults and behavior.faults[0].vaddr == 0x9
        # Thread halted at the fault: `after` never written.
        assert behavior.registers == ((0, "after", None),)

    def test_vstore_writes_translated_frame(self):
        layout = layout_with()
        b = ThreadBuilder(0, is_kernel=False)
        b.vstore(0x8, 42)
        program = build_program([b], initial_memory=layout.initial_memory(),
                                mmu=layout.mmu_config())
        res = explore_sc(program, observe_locs=[PAGE_A])
        (behavior,) = res.behaviors
        assert dict(behavior.memory)[PAGE_A] == 42

    def test_two_level_walk(self):
        layout = layout_with(vpn=0x23, levels=2)
        init = layout.initial_memory()
        init[PAGE_A] = 9
        b = ThreadBuilder(0, is_kernel=False)
        b.vload("r0", 0x23)
        program = build_program([b], observed={0: ["r0"]},
                                initial_memory=init,
                                mmu=layout.mmu_config())
        assert admits(explore_sc(program), t0_r0=9)


class TestTLBBehavior:
    def test_stale_tlb_entry_after_unmap_without_tlbi(self):
        """A translation cached before an unmap keeps serving — on both
        models — until invalidated (architectural, not RM-specific)."""
        layout = layout_with()
        pte = layout.leaf_entry(0x8)
        init = layout.initial_memory()
        init[PAGE_A] = 7
        t0 = ThreadBuilder(0, is_kernel=False)
        t0.vload("r0", 0x8).vload("r1", 0x8)
        t1 = ThreadBuilder(1)
        t1.pt_store(pte, 0, kind=PTKind.STAGE2, level=0)
        program = build_program([t0, t1], observed={0: ["r0", "r1"]},
                                initial_memory=init,
                                mmu=layout.mmu_config())
        sc = explore_sc(program)
        # First read succeeded (cached), unmap, second read still hits.
        assert admits(sc, t0_r0=7, t0_r1=7)

    def test_tlbi_drops_entries_globally(self):
        layout = layout_with()
        pte = layout.leaf_entry(0x8)
        init = layout.initial_memory()
        init[PAGE_A] = 7
        t0 = ThreadBuilder(0, is_kernel=False)
        t0.vload("r0", 0x8).vload("r1", 0x8)
        t1 = ThreadBuilder(1)
        t1.pt_store(pte, 0, kind=PTKind.STAGE2, level=0)
        t1.barrier("full")
        t1.tlbi(0x8)
        program = build_program([t0, t1], observed={0: ["r0", "r1"]},
                                initial_memory=init,
                                mmu=layout.mmu_config())
        sc = explore_sc(program)
        # On SC the invalidation forces the second access to re-walk the
        # (possibly cleared) table: the fault outcome must exist.
        assert any(b.faults for b in sc.behaviors)

    def test_walker_floor_blocks_stale_reads_on_rm(self):
        """After barrier+TLBI, relaxed walkers must see the unmap."""
        layout = layout_with()
        pte = layout.leaf_entry(0x8)
        init = layout.initial_memory()
        init[PAGE_A] = 7
        init[0x500] = 0
        t1 = ThreadBuilder(0)
        t1.pt_store(pte, 0, kind=PTKind.STAGE2, level=0)
        t1.barrier("full")
        t1.tlbi(0x8)
        t1.store(0x500, 1, release=True)
        t0 = ThreadBuilder(1, is_kernel=False)
        t0.spin_until_eq("d", 0x500, 1, acquire=True)
        t0.vload("r0", 0x8)
        program = build_program([t1, t0], observed={1: ["r0"]},
                                initial_memory=init,
                                mmu=layout.mmu_config())
        rm = explore_promising(program)
        assert not admits(rm, t1_r0=7)
        assert all(
            b.faults for b in rm.behaviors if b.panic is None
        )

    def test_without_barrier_stale_walk_remains(self):
        layout = layout_with()
        pte = layout.leaf_entry(0x8)
        init = layout.initial_memory()
        init[PAGE_A] = 7
        init[0x500] = 0
        t1 = ThreadBuilder(0)
        t1.pt_store(pte, 0, kind=PTKind.STAGE2, level=0)
        t1.tlbi(0x8)
        t1.store(0x500, 1, release=True)
        t0 = ThreadBuilder(1, is_kernel=False)
        t0.spin_until_eq("d", 0x500, 1, acquire=True)
        t0.vload("r0", 0x8)
        program = build_program([t1, t0], observed={1: ["r0"]},
                                initial_memory=init,
                                mmu=layout.mmu_config())
        rm = explore_promising(program)
        assert admits(rm, t1_r0=7)   # Example 6's stale outcome


class TestPerLevelWalkerFloor:
    """The walker floor binds *every* level of the walk, not just the
    leaf: a barrier-ordered TLBI must hide stale non-leaf descriptors
    from later walks exactly as it hides stale leaves."""

    ROOT, T_OLD, T_NEW = 0x200, 0x210, 0x220
    P_OLD, P_NEW = 0x100, 0x110
    FLAG = 0x500

    def _root_remap_program(self, with_tlbi: bool):
        """Remap the non-leaf root entry T_OLD -> T_NEW, then handshake."""
        from repro.ir.program import MMUConfig

        u = ThreadBuilder(0)
        u.pt_store(self.ROOT, 0, kind=PTKind.STAGE2, level=0)
        u.barrier("full")
        if with_tlbi:
            u.tlbi(0)
        u.barrier("full")
        u.pt_store(self.ROOT, self.T_NEW, kind=PTKind.STAGE2, level=0)
        u.barrier("full")
        if with_tlbi:
            u.tlbi(0)
        u.barrier("full")
        u.store(self.FLAG, 1, release=True)
        a = ThreadBuilder(1, is_kernel=False)
        a.spin_until_eq("f", self.FLAG, 1, acquire=True)
        a.vload("r0", 0)
        init = {
            self.ROOT: self.T_OLD, self.T_OLD: self.P_OLD,
            self.T_NEW: self.P_NEW, self.P_OLD: 1, self.P_NEW: 2,
            self.FLAG: 0,
        }
        return build_program(
            [u, a], observed={1: ["r0"]}, initial_memory=init,
            mmu=MMUConfig(root=self.ROOT),
        )

    def test_tlbi_floor_hides_stale_nonleaf_descriptor(self):
        rm = explore_promising(self._root_remap_program(with_tlbi=True))
        # The old table is unreachable: the post-handshake walk reads
        # the new root descriptor (frame value 2) or faults inside the
        # remap window — never frame value 1 through the stale level-0
        # descriptor.
        assert not admits(rm, t1_r0=1)
        assert admits(rm, t1_r0=2)

    def test_without_tlbi_stale_nonleaf_descriptor_survives(self):
        rm = explore_promising(self._root_remap_program(with_tlbi=False))
        assert admits(rm, t1_r0=1)


class TestPureWalkerAttributeMask:
    """The snapshot walker must strip A/D attribute bits at every level
    (the ``had`` feature writes them into live descriptors)."""

    def _mmu(self):
        from repro.ir.program import MMUConfig

        return MMUConfig(root=0x200)

    def test_leaf_attribute_bits_masked(self):
        from repro.memory.semantics import PTE_AF, PTE_DIRTY, PTE_VALUE_MASK
        from repro.mmu.walker import walk_memory

        memory = {0x200: 0x210, 0x210: 0x100 | PTE_AF | PTE_DIRTY}
        result = walk_memory(memory, self._mmu(), 0, PTE_VALUE_MASK)
        assert not result.is_fault
        assert result.ppage == 0x100

    def test_nonleaf_attribute_bits_masked(self):
        from repro.memory.semantics import PTE_AF, PTE_VALUE_MASK
        from repro.mmu.walker import walk_memory

        # An access-flagged root descriptor must still point at 0x210,
        # not at the garbage address 0x210 | AF.
        memory = {0x200: 0x210 | PTE_AF, 0x210: 0x100}
        result = walk_memory(memory, self._mmu(), 0, PTE_VALUE_MASK)
        assert not result.is_fault
        assert result.ppage == 0x100

    def test_attribute_only_entry_is_invalid_under_mask(self):
        from repro.memory.semantics import PTE_AF, PTE_VALUE_MASK
        from repro.mmu.walker import walk_memory

        # Value bits all zero: the entry is invalid no matter which
        # attribute bits survive in the descriptor.
        memory = {0x200: 0x210, 0x210: PTE_AF}
        assert walk_memory(memory, self._mmu(), 0, PTE_VALUE_MASK).is_fault

    def test_default_mask_is_identity(self):
        from repro.memory.semantics import PTE_AF
        from repro.mmu.walker import walk_memory

        # Pre-``had`` callers keep bit-identical raw-walk behavior.
        memory = {0x200: 0x210, 0x210: 0x100 | PTE_AF}
        result = walk_memory(memory, self._mmu(), 0)
        assert result.ppage == 0x100 | PTE_AF


class TestWalkerStaleness:
    def test_walker_reads_exclude_own_cpu_promises(self):
        """A CPU's own promised PT store is not visible to its walker."""
        layout = layout_with(vpn=0x8, ppage=PAGE_A)
        free_pte = 0x1000 + 0x9
        init = layout.initial_memory()
        init[PAGE_B] = 5
        b = ThreadBuilder(0, is_kernel=False)
        # Store (promisable) then virtually load through the entry the
        # store creates: must fault or see the committed mapping, never
        # observe its own uncommitted promise.
        b.vload("r0", 0x9)
        b.pt_store(free_pte, PAGE_B, kind=PTKind.STAGE2, level=0)
        program = build_program([b], observed={0: ["r0"]},
                                initial_memory=init,
                                mmu=layout.mmu_config())
        rm = explore_promising(program)
        assert not admits(rm, t0_r0=5)
