"""Tests for the pretty-printer, error hierarchy, and small utilities."""

import pytest

from repro.errors import (
    ExecutionError,
    ExplorationBudgetExceeded,
    HypercallError,
    KernelPanic,
    ProgramError,
    ReproError,
    SecurityViolation,
    VerificationError,
)
from repro.ir import (
    PTKind,
    Reg,
    ThreadBuilder,
    build_program,
    format_instruction,
    format_program,
    format_thread,
)
from repro.perf import M400, run_native, workload_by_name


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ProgramError,
            ExecutionError,
            ExplorationBudgetExceeded,
            HypercallError,
            SecurityViolation,
            VerificationError,
        ],
    )
    def test_all_subclass_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_kernel_panic_carries_cpu(self):
        panic = KernelPanic("boom", cpu=3)
        assert panic.cpu == 3
        assert "CPU 3" in str(panic)

    def test_kernel_panic_without_cpu(self):
        assert "boom" in str(KernelPanic("boom"))


class TestPrettyPrinter:
    def _fmt(self, emit):
        b = ThreadBuilder(0)
        emit(b)
        return format_instruction(b.build().instrs[0])

    def test_loads_and_stores(self):
        assert self._fmt(lambda b: b.load("r0", 0x10)) == "r0 := [0x10]"
        assert "(acquire)" in self._fmt(
            lambda b: b.load("r0", 0x10, acquire=True)
        )
        assert "(release)" in self._fmt(
            lambda b: b.store(0x10, 1, release=True)
        )

    def test_pt_store_tagged(self):
        text = self._fmt(
            lambda b: b.pt_store(0x1000, 5, kind=PTKind.STAGE2, level=2)
        )
        assert "stage2-pt L2" in text

    def test_atomics(self):
        assert "fetch_and_add" in self._fmt(lambda b: b.faa("r0", 0x10))
        assert "cas" in self._fmt(lambda b: b.cas("r0", 0x10, 0, 1))
        assert "ldxr" in self._fmt(lambda b: b.ldxr("r0", 0x10))
        assert "stxr" in self._fmt(lambda b: b.stxr("s", 0x10, 1))

    def test_control_and_sync(self):
        assert self._fmt(lambda b: b.barrier("full")) == "dmb sy"
        assert "pull [0x10]" == self._fmt(lambda b: b.pull(0x10))
        assert "push [0x10]" == self._fmt(lambda b: b.push(0x10))
        assert "tlbi" in self._fmt(lambda b: b.tlbi(0x8))
        assert "tlbi all" == self._fmt(lambda b: b.tlbi())
        assert "panic" in self._fmt(lambda b: b.panic("x"))
        assert "oracle" in self._fmt(lambda b: b.oracle_read("r0", 0x10))

    def test_virtual_accesses(self):
        assert "translate" in self._fmt(lambda b: b.vload("r0", 0x8))
        assert "translate" in self._fmt(lambda b: b.vstore(0x8, 1))

    def test_thread_and_program_listings(self):
        b = ThreadBuilder(0, name="demo")
        b.mov("a", 1).store(0x10, "a")
        program = build_program([b], initial_memory={0x10: 0}, name="p")
        listing = format_program(program)
        assert "program 'p'" in listing
        assert "thread 0 (demo, kernel)" in listing
        assert "init: [0x10]=0" in listing
        assert format_thread(program.threads[0]) in listing


class TestNativeBaseline:
    def test_native_is_unity(self):
        run = run_native(workload_by_name("Apache"), M400)
        assert run.normalized_perf == 1.0
        assert run.machine == "m400"
        assert run.seconds > 0
