"""The SeKVM wDRF verification pipeline (Sections 5, 5.6).

Every verified primitive must pass all six conditions; every seeded-bug
variant must fail.  The version sweep checks the 3- and 4-level
configurations (a subset of the full matrix for test-time reasons; the
full 16-configuration sweep runs in the benchmark suite).
"""

import pytest

from repro.sekvm import (
    KVMVersion,
    all_versions,
    default_version,
    kcore_buggy_cases,
    kcore_verified_cases,
    verify_sekvm,
)
from repro.vrm import verify_wdrf

VERIFIED = kcore_verified_cases(s2_levels=4)
BUGGY = kcore_buggy_cases(s2_levels=4)


@pytest.mark.parametrize("case", VERIFIED, ids=[c.name for c in VERIFIED])
def test_verified_primitive_passes(case):
    report = verify_wdrf(case.spec)
    assert report.all_verified, report.describe()


@pytest.mark.parametrize("case", BUGGY, ids=[c.name for c in BUGGY])
def test_buggy_variant_rejected(case):
    report = verify_wdrf(case.spec)
    assert not report.all_hold, report.describe()


def test_version_matrix_has_16_entries():
    versions = all_versions()
    assert len(versions) == 16
    assert {v.linux for v in versions} == {
        "4.18", "4.20", "5.0", "5.1", "5.2", "5.3", "5.4", "5.5"
    }
    assert {v.s2_levels for v in versions} == {3, 4}


def test_default_version_is_original_retrofit():
    v = default_version()
    assert v.linux == "4.18" and v.s2_levels == 4


@pytest.mark.parametrize("levels", [3, 4])
def test_verify_sekvm_both_page_table_depths(levels):
    version = KVMVersion(linux="4.18", s2_levels=levels)
    outcome = verify_sekvm(version)
    assert outcome.all_verified, outcome.describe()


def test_verify_sekvm_with_buggy_all_as_expected():
    outcome = verify_sekvm(include_buggy=True)
    assert outcome.all_as_expected, outcome.describe()
    verified = [o for o in outcome.outcomes if o.case.should_verify]
    rejected = [o for o in outcome.outcomes if not o.case.should_verify]
    assert len(verified) == 6
    assert len(rejected) == 7


def test_describe_lists_every_case():
    outcome = verify_sekvm()
    text = outcome.describe()
    for case in kcore_verified_cases(4):
        assert case.name in text
