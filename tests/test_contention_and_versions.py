"""Tests for the contention study module and the Linux-version sweep."""

import pytest

from repro.perf import (
    Hypervisor,
    M400,
    SimConfig,
    run_contention_study,
    simulate_operation,
)
from repro.perf.contention import ContentionPoint, format_contention
from repro.sekvm.versions import VERIFIED_LINUX_VERSIONS


class TestContentionStudy:
    POINTS = run_contention_study(vm_counts=(1, 4, 8), rounds=4)

    def test_points_per_vm_count(self):
        assert [p.vms for p in self.POINTS] == [1, 4, 8]

    def test_acquisitions_grow_with_load(self):
        by_vms = {p.vms: p for p in self.POINTS}
        assert by_vms[8].s2pt_acquisitions > by_vms[1].s2pt_acquisitions

    def test_contention_rates_zero_in_functional_model(self):
        for point in self.POINTS:
            assert point.vm_lock_contention_rate == 0.0
            assert point.s2pt_contention_rate == 0.0

    def test_rate_of_empty_point_is_zero(self):
        empty = ContentionPoint(0, 0, 0, 0, 0)
        assert empty.vm_lock_contention_rate == 0.0
        assert empty.s2pt_contention_rate == 0.0

    def test_format(self):
        text = format_contention(list(self.POINTS))
        assert "vm-lock" in text
        assert "   8" in text


class TestVersionSweep:
    def test_every_verified_version_has_a_cost_factor(self):
        cfg_base = SimConfig(machine=M400, hypervisor=Hypervisor.SEKVM)
        base = cfg_base.version_factor()
        assert base == 1.0
        factors = []
        for linux in VERIFIED_LINUX_VERSIONS:
            cfg = SimConfig(
                machine=M400, hypervisor=Hypervisor.SEKVM, linux=linux
            )
            factors.append(cfg.version_factor())
        # Monotonically non-increasing: later kernels are (slightly)
        # faster, and the 4.18-vs-5.4 delta stays small (the paper finds
        # no substantial difference).
        assert factors == sorted(factors, reverse=True)
        assert factors[0] - factors[-1] < 0.05

    def test_costs_scale_with_version_factor(self):
        old = simulate_operation(
            SimConfig(machine=M400, hypervisor=Hypervisor.SEKVM,
                      linux="4.18"),
            "Hypercall",
        )
        new = simulate_operation(
            SimConfig(machine=M400, hypervisor=Hypervisor.SEKVM,
                      linux="5.5"),
            "Hypercall",
        )
        assert new < old
        assert (old - new) / old < 0.05
