"""Tests for execution tracing / counterexample explanation."""

from repro.ir import ThreadBuilder, build_program
from repro.memory import ModelConfig, explain_outcome, find_execution
from repro.memory.semantics import PROMISING_ARM, SC

X, Y = 0x100, 0x200


def lb_program():
    t0 = ThreadBuilder(0)
    t0.load("r0", X).store(Y, 1)
    t1 = ThreadBuilder(1)
    t1.load("r1", Y).store(X, 1)
    return build_program([t0, t1], observed={0: ["r0"], 1: ["r1"]},
                         initial_memory={X: 0, Y: 0}, name="LB")


class TestExplainOutcome:
    def test_finds_relaxed_execution(self):
        trace = explain_outcome(lb_program(), PROMISING_ARM, t0_r0=1, t1_r1=1)
        assert trace is not None
        assert any(e.kind == "promise" for e in trace.events)
        assert any(e.kind == "fulfill" for e in trace.events)

    def test_unreachable_outcome_returns_none(self):
        trace = explain_outcome(lb_program(), SC, t0_r0=1, t1_r1=1)
        assert trace is None

    def test_render_includes_promise_list(self):
        trace = explain_outcome(lb_program(), PROMISING_ARM, t0_r0=1, t1_r1=1)
        text = trace.render()
        assert "promise list" in text
        assert "outcome:" in text
        assert "CPU 0" in text and "CPU 1" in text

    def test_sc_execution_traced_too(self):
        trace = explain_outcome(lb_program(), SC, t0_r0=0, t1_r1=0)
        assert trace is not None
        assert all(e.kind in ("exec",) for e in trace.events)

    def test_find_execution_with_custom_predicate(self):
        program = lb_program()
        trace = find_execution(
            program, PROMISING_ARM,
            predicate=lambda b: b.panic is None and b.registers,
        )
        assert trace is not None
        assert trace.program_name == "LB"


class TestExplainPaperBug:
    def test_example3_stale_context_explained(self):
        from repro.litmus import example3_vcpu

        program = example3_vcpu(correct=False)
        trace = explain_outcome(program, PROMISING_ARM, t1_restored=0)
        assert trace is not None
        text = trace.render()
        # The stale restore is caused by the INACTIVE store being
        # promised ahead of the context save.
        assert "promise" in text
