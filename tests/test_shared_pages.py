"""Tests for the shared-page (virtio ring) protocol."""

import pytest

from repro.errors import HypercallError
from repro.sekvm import SeKVMSystem, make_image


@pytest.fixture
def shared_setup():
    system = SeKVMSystem(total_pages=128)
    image, _ = make_image(1)
    vmid = system.boot_vm(image, vcpus=1)
    system.run_guest_work(vmid, 0, cpu=0, writes={0x30: 5})
    return system, vmid


class TestSharedPages:
    def test_shared_page_becomes_kserv_mappable(self, shared_setup):
        system, vmid = shared_setup
        pfn = system.kcore.share_vm_page(0, vmid, vpn=0x30)
        # Before sharing this would be refused (other tests cover it);
        # after sharing, KServ maps and reads the ring.
        system.kcore.map_pfn_kserv(0, vpn=0x99, pfn=pfn)
        assert system.kcore.kserv_read(0x99) == 5

    def test_shared_page_is_two_way(self, shared_setup):
        system, vmid = shared_setup
        pfn = system.kcore.share_vm_page(0, vmid, vpn=0x30)
        system.kcore.map_pfn_kserv(0, vpn=0x99, pfn=pfn)
        system.kcore.kserv_write(0x99, 42)       # host fills the ring
        assert system.guest_read(vmid, 0x30) == 42

    def test_unshared_pages_stay_protected(self, shared_setup):
        system, vmid = shared_setup
        system.kcore.share_vm_page(0, vmid, vpn=0x30)
        other_pfn = system.kcore.vms[vmid].s2pt.translate(0)
        with pytest.raises(HypercallError):
            system.kcore.map_pfn_kserv(0, vpn=0x9A, pfn=other_pfn)

    def test_sharing_unmapped_vpn_rejected(self, shared_setup):
        system, vmid = shared_setup
        with pytest.raises(HypercallError):
            system.kcore.share_vm_page(0, vmid, vpn=0x77)

    def test_sharing_counts_as_hypercall(self, shared_setup):
        system, vmid = shared_setup
        before = system.kcore.stats.hypercalls
        system.kcore.share_vm_page(0, vmid, vpn=0x30)
        assert system.kcore.stats.hypercalls == before + 1
