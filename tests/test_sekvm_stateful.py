"""Stateful property testing of the SeKVM system.

Hypothesis drives random sequences of hypervisor operations — VM boots,
vCPU runs/stops, page grants, KServ maps, DMA programming, snapshots,
teardowns, and adversarial probes — and checks the security invariants
after every step:

* every physical page has exactly one owner, and KCore pages are never
  mapped into any guest-visible table;
* VM memory reflects only VM writes (shadow-model agreement);
* adversarial probes (mapping foreign pages, DMA at VM memory) never
  succeed;
* vCPU contexts are held by at most one physical CPU.

This is the fuzzing analogue of the paper's security proofs: no
reachable sequence of KServ requests breaks the invariants.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import HypercallError, KernelPanic
from repro.sekvm import KCORE, SeKVMSystem, make_image
from repro.sekvm.s2page import OwnerKind
from repro.sekvm.snapshot import SnapshotManager


class SeKVMMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.system = SeKVMSystem(total_pages=96, cpus=4)
        self.snapshots = SnapshotManager(self.system.kcore)
        self.vmids = []
        self.running = {}          # vmid -> cpu currently running vCPU 0
        self.shadow = {}           # (vmid, vpn) -> expected guest value

    # ------------------------------------------------------------------
    @rule(contents=st.lists(st.integers(1, 99), min_size=1, max_size=3))
    def boot_vm(self, contents):
        if len(self.vmids) >= 4:
            return
        try:
            vmid = self.system.boot_vm(list(contents), vcpus=1)
        except HypercallError:
            return  # out of memory: acceptable
        self.vmids.append(vmid)
        for vpn, value in enumerate(contents):
            self.shadow[(vmid, vpn)] = value

    @rule(pick=st.integers(0, 10), cpu=st.integers(0, 3))
    def run_vcpu(self, pick, cpu):
        if not self.vmids:
            return
        vmid = self.vmids[pick % len(self.vmids)]
        if vmid in self.running:
            # Claiming an ACTIVE vCPU must panic; state is unchanged.
            with pytest.raises(KernelPanic):
                self.system.kcore.run_vcpu(cpu, vmid, 0)
            return
        self.system.kcore.run_vcpu(cpu, vmid, 0)
        self.running[vmid] = cpu

    @rule(pick=st.integers(0, 10))
    def stop_vcpu(self, pick):
        if not self.running:
            return
        vmid = list(self.running)[pick % len(self.running)]
        self.system.kcore.stop_vcpu(self.running.pop(vmid), vmid, 0)

    @rule(pick=st.integers(0, 10), vpn=st.integers(0x10, 0x18),
          value=st.integers(1, 999))
    def guest_write(self, pick, vpn, value):
        if not self.vmids:
            return
        vmid = self.vmids[pick % len(self.vmids)]
        if vmid in self.running:
            return
        try:
            self.system.run_guest_work(
                vmid, 0, cpu=0, writes={vpn: value}
            )
        except HypercallError:
            return  # out of donatable frames
        self.shadow[(vmid, vpn)] = value

    @rule(value=st.integers(0, 99))
    def kserv_work(self, value):
        try:
            pfn = self.system.kserv.alloc_page()
        except HypercallError:
            return
        vpn = self.system.kserv.map_and_write(0, pfn, value)
        assert self.system.kserv.read(vpn) == value

    @rule(pick=st.integers(0, 10))
    def adversarial_probe(self, pick):
        if not self.vmids:
            return
        vmid = self.vmids[pick % len(self.vmids)]
        for pfn in self.system.vm_pages(vmid)[:2]:
            assert not self.system.kserv.try_map_foreign_page(0, pfn)
            assert not self.system.kserv.try_dma_attack(0, 9, pfn)
        for pfn in self.system.kcore_pages()[:1]:
            assert not self.system.kserv.try_map_foreign_page(0, pfn)

    @rule(pick=st.integers(0, 10))
    def snapshot_roundtrip(self, pick):
        if not self.vmids:
            return
        vmid = self.vmids[pick % len(self.vmids)]
        snap = self.snapshots.snapshot_vm(0, vmid)
        try:
            self.snapshots.restore_vm(0, snap, self.system.kserv.alloc_page)
        except HypercallError:
            return

    @rule(pick=st.integers(0, 10))
    def teardown_vm(self, pick):  # note: `teardown` is reserved by hypothesis
        if not self.vmids:
            return
        vmid = self.vmids[pick % len(self.vmids)]
        if vmid in self.running:
            return
        self.system.teardown_vm(vmid)
        self.vmids.remove(vmid)
        self.shadow = {
            k: v for k, v in self.shadow.items() if k[0] != vmid
        }

    # ------------------------------------------------------------------
    def teardown(self):
        # Post-run audit: every page-table operation the random scenario
        # performed must satisfy the runtime wDRF discipline.
        if hasattr(self, "system"):
            from repro.sekvm.audit import audit_system

            audit = audit_system(self.system)
            assert audit.holds, audit.describe()

    @invariant()
    def ownership_exclusive(self):
        if not hasattr(self, "system"):
            return
        self.system.kcore.s2page.audit_exclusive_ownership()

    @invariant()
    def kcore_pages_unmapped(self):
        if not hasattr(self, "system"):
            return
        db = self.system.kcore.s2page
        for pfn in db.pages_owned_by(KCORE):
            assert db._entry(pfn).mapped_count == 0

    @invariant()
    def guest_memory_matches_shadow(self):
        if not hasattr(self, "system"):
            return
        for (vmid, vpn), expected in self.shadow.items():
            assert self.system.guest_read(vmid, vpn) == expected

    @invariant()
    def vcpu_single_holder(self):
        if not hasattr(self, "system"):
            return
        for vmid, vm in self.system.kcore.vms.items():
            for ctx in vm.vcpus.values():
                if ctx.running_on is not None:
                    assert self.running.get(vmid) == ctx.running_on


TestSeKVMStateful = SeKVMMachine.TestCase
TestSeKVMStateful.settings = settings(
    max_examples=30,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
