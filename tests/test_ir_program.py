"""Unit tests for threads, programs, and instruction validation."""

import pytest

from repro.errors import ProgramError
from repro.ir import (
    BarrierKind,
    FetchAndInc,
    Imm,
    Label,
    Load,
    MemSpace,
    MMUConfig,
    Program,
    PTKind,
    Pull,
    Store,
    Thread,
    ThreadBuilder,
    build_program,
    is_memory_access,
    is_pt_store,
    make_program,
)
from repro.ir.instructions import Barrier, Jump, Mov, Nop, validate_instruction


def simple_thread(tid=0, instrs=(), **kw):
    return Thread(tid=tid, instrs=tuple(instrs), **kw)


class TestThread:
    def test_labels_resolved(self):
        t = simple_thread(instrs=[Label("a"), Nop(), Label("b")])
        assert t.labels() == {"a": 0, "b": 2}

    def test_duplicate_label_rejected(self):
        t = simple_thread(instrs=[Label("a"), Label("a")])
        with pytest.raises(ProgramError):
            t.labels()

    def test_unknown_branch_target_rejected(self):
        t = simple_thread(instrs=[Jump("nowhere")])
        with pytest.raises(ProgramError):
            t.validate()

    def test_valid_branch_passes(self):
        t = simple_thread(instrs=[Label("top"), Jump("top")])
        t.validate()


class TestProgram:
    def test_duplicate_tids_rejected(self):
        with pytest.raises(ProgramError):
            Program(threads=(simple_thread(0), simple_thread(0)))

    def test_thread_lookup(self):
        p = make_program([simple_thread(0), simple_thread(1)])
        assert p.thread(1).tid == 1
        with pytest.raises(ProgramError):
            p.thread(7)

    def test_kernel_user_partition(self):
        k = simple_thread(0, is_kernel=True)
        u = simple_thread(1, is_kernel=False)
        p = make_program([k, u])
        assert [t.tid for t in p.kernel_threads()] == [0]
        assert [t.tid for t in p.user_threads()] == [1]

    def test_space_defaults_to_kernel(self):
        p = make_program([simple_thread(0)], spaces={5: MemSpace.USER})
        assert p.space_of(5) is MemSpace.USER
        assert p.space_of(6) is MemSpace.KERNEL

    def test_initial_value_defaults_to_zero(self):
        p = make_program([simple_thread(0)], initial_memory={1: 9})
        assert p.initial_value(1) == 9
        assert p.initial_value(2) == 0


class TestMMUConfig:
    def test_rejects_zero_levels(self):
        with pytest.raises(ProgramError):
            MMUConfig(root=0x1000, levels=0)

    def test_rejects_bad_bits(self):
        with pytest.raises(ProgramError):
            MMUConfig(root=0x1000, va_bits_per_level=0)


class TestInstructionValidation:
    def test_pt_level_requires_pt_kind(self):
        bad = Store(Imm(1), Imm(2), pt_level=1)
        with pytest.raises(ProgramError):
            validate_instruction(bad)

    def test_negative_pt_level_rejected(self):
        bad = Store(Imm(1), Imm(2), pt_kind=PTKind.STAGE2, pt_level=-1)
        with pytest.raises(ProgramError):
            validate_instruction(bad)

    def test_faa_amount_zero_rejected(self):
        with pytest.raises(ProgramError):
            validate_instruction(FetchAndInc("r0", Imm(1), amount=0))

    def test_empty_pull_rejected(self):
        with pytest.raises(ProgramError):
            validate_instruction(Pull(locs=()))

    def test_thread_construction_validates(self):
        with pytest.raises(ProgramError):
            simple_thread(instrs=[Store(Imm(1), Imm(2), pt_level=0)])


class TestClassifiers:
    def test_is_memory_access(self):
        assert is_memory_access(Load("r0", Imm(1)))
        assert is_memory_access(Store(Imm(1), Imm(2)))
        assert is_memory_access(FetchAndInc("r0", Imm(1)))
        assert not is_memory_access(Mov("r0", Imm(1)))
        assert not is_memory_access(Barrier(BarrierKind.FULL))

    def test_is_pt_store(self):
        assert is_pt_store(Store(Imm(1), Imm(2), pt_kind=PTKind.STAGE2))
        assert not is_pt_store(Store(Imm(1), Imm(2)))
        assert not is_pt_store(Load("r0", Imm(1)))


class TestBuilder:
    def test_chaining_and_build(self):
        b = ThreadBuilder(3, name="worker")
        thread = b.mov("a", 1).store(0x10, "a").build(observed=["a"])
        assert thread.tid == 3
        assert thread.name == "worker"
        assert thread.observed == ("a",)
        assert len(thread.instrs) == 2

    def test_fresh_labels_unique(self):
        b = ThreadBuilder(0)
        assert b.fresh_label() != b.fresh_label()

    def test_unknown_barrier_rejected(self):
        with pytest.raises(ProgramError):
            ThreadBuilder(0).barrier("bogus")

    def test_barrier_aliases(self):
        b = ThreadBuilder(0)
        b.barrier("sy").barrier("full").barrier("ld").barrier("st").barrier("isb")
        kinds = [i.kind for i in b.build().instrs]
        assert kinds == [
            BarrierKind.FULL,
            BarrierKind.FULL,
            BarrierKind.LD,
            BarrierKind.ST,
            BarrierKind.ISB,
        ]

    def test_spin_loop_structure(self):
        b = ThreadBuilder(0)
        b.spin_until_eq("r", 0x10, 1)
        thread = b.build()
        # label, load, branch
        assert len(thread.instrs) == 3
        thread.validate()

    def test_if_eq_context(self):
        b = ThreadBuilder(0)
        b.mov("a", 1)
        with b.if_eq("a", 1):
            b.store(0x10, 7)
        thread = b.build()
        thread.validate()

    def test_build_program_observed(self):
        b0 = ThreadBuilder(0)
        b0.mov("x", 1)
        p = build_program([b0], observed={0: ["x"]}, name="demo")
        assert p.name == "demo"
        assert p.threads[0].observed == ("x",)
