"""Tests for the runtime wDRF audit of a live system."""

import pytest

from repro.sekvm import SeKVMSystem, Stage2PageTable, make_image
from repro.sekvm.audit import audit_system
from repro.sekvm.snapshot import SnapshotManager


def exercised_system():
    system = SeKVMSystem(total_pages=128, cpus=4)
    image, _ = make_image(1, 2)
    vmid_a = system.boot_vm(image, vcpus=2)
    vmid_b = system.boot_vm(image, vcpus=1)
    system.run_guest_work(vmid_a, 0, cpu=1, writes={0x20: 5, 0x21: 6})
    pfn = system.kserv.alloc_page()
    system.kcore.smmu_map(0, device_id=3, iova=0x40, pfn=pfn,
                          owner=__import__("repro.sekvm.s2page",
                                           fromlist=["KSERV"]).KSERV)
    system.kcore.smmu_unmap(0, device_id=3, iova=0x40)
    SnapshotManager(system.kcore).snapshot_vm(0, vmid_a)
    system.teardown_vm(vmid_b)
    return system


class TestSystemAudit:
    def test_full_lifecycle_audits_clean(self):
        system = exercised_system()
        audit = audit_system(system)
        assert audit.holds, audit.describe()
        assert audit.operations_audited > 100   # EL2 boot map dominates

    def test_seeded_missing_tlbi_caught(self):
        system = SeKVMSystem(total_pages=96)
        # Swap KServ's table for a buggy variant that skips TLBIs.
        system.kcore.kserv_s2pt = Stage2PageTable(
            "kserv", levels=4, buggy_skip_tlbi=True
        )
        pfn = system.kserv.alloc_page()
        system.kcore.map_pfn_kserv(0, vpn=0x10, pfn=pfn)
        system.kcore.unmap_pfn_kserv(0, vpn=0x10)
        audit = audit_system(system)
        assert not audit.holds
        assert any("without TLBI" in v for v in audit.violations)

    def test_seeded_missing_barrier_caught(self):
        system = SeKVMSystem(total_pages=96)
        system.kcore.kserv_s2pt = Stage2PageTable(
            "kserv", levels=4, buggy_skip_barrier=True
        )
        pfn = system.kserv.alloc_page()
        system.kcore.map_pfn_kserv(0, vpn=0x10, pfn=pfn)
        system.kcore.unmap_pfn_kserv(0, vpn=0x10)
        audit = audit_system(system)
        assert not audit.holds
        assert any("without barrier" in v for v in audit.violations)

    def test_describe_output(self):
        audit = audit_system(exercised_system())
        text = audit.describe()
        assert "CLEAN" in text
