"""Unit tests for static dependency analysis (repro.ir.dependencies)."""

from repro.ir import Reg, ThreadBuilder
from repro.ir.dependencies import (
    address_dependencies,
    address_registers,
    barrier_ordered_pairs,
    coherence_pairs,
    control_dependencies,
    data_dependencies,
    may_reorder,
    preserved_program_order,
    static_location,
    value_registers,
    written_register,
)

X, Y = 0x100, 0x200


def thread_of(builder: ThreadBuilder):
    return builder.build()


class TestOperandAnalysis:
    def test_written_register(self):
        b = ThreadBuilder(0)
        b.load("r0", X).store(Y, 1).mov("r1", 2).faa("r2", X)
        t = thread_of(b)
        assert written_register(t.instrs[0]) == "r0"
        assert written_register(t.instrs[1]) is None
        assert written_register(t.instrs[2]) == "r1"
        assert written_register(t.instrs[3]) == "r2"

    def test_address_and_value_registers(self):
        b = ThreadBuilder(0)
        b.load("r0", Reg("base") + 4).store(Reg("addr"), Reg("val"))
        t = thread_of(b)
        assert address_registers(t.instrs[0]) == frozenset({"base"})
        assert address_registers(t.instrs[1]) == frozenset({"addr"})
        assert value_registers(t.instrs[1]) == frozenset({"val"})

    def test_static_location(self):
        b = ThreadBuilder(0)
        b.load("r0", X).load("r1", Reg("r0"))
        t = thread_of(b)
        assert static_location(t.instrs[0]) == X
        assert static_location(t.instrs[1]) is None


class TestDependencyRelations:
    def test_data_dependency_load_to_store(self):
        b = ThreadBuilder(0)
        b.load("r0", X).store(Y, "r0")
        assert (0, 1) in data_dependencies(thread_of(b))

    def test_address_dependency(self):
        b = ThreadBuilder(0)
        b.load("r0", X).load("r1", Reg("r0") + Y)
        assert (0, 1) in address_dependencies(thread_of(b))

    def test_no_false_dependency(self):
        b = ThreadBuilder(0)
        b.load("r0", X).store(Y, 1)
        t = thread_of(b)
        assert data_dependencies(t) == set()
        assert (0, 1) not in address_dependencies(t)

    def test_control_dependency_covers_following(self):
        b = ThreadBuilder(0)
        skip = b.fresh_label("skip")
        b.load("r0", X).bz(Reg("r0"), skip).store(Y, 1).label(skip)
        deps = control_dependencies(thread_of(b))
        assert (1, 2) in deps  # branch -> store

    def test_coherence_same_location(self):
        b = ThreadBuilder(0)
        b.store(X, 1).load("r0", X).store(Y, 2)
        pairs = coherence_pairs(thread_of(b))
        assert (0, 1) in pairs
        assert (0, 2) not in pairs


class TestBarrierOrdering:
    def test_full_barrier_orders_everything(self):
        b = ThreadBuilder(0)
        b.store(X, 1).barrier("full").load("r0", Y)
        assert (0, 2) in barrier_ordered_pairs(thread_of(b))

    def test_st_barrier_orders_stores_only(self):
        b = ThreadBuilder(0)
        b.store(X, 1).load("r0", X).barrier("st").store(Y, 1).load("r1", Y)
        pairs = barrier_ordered_pairs(thread_of(b))
        assert (0, 3) in pairs       # store -> store
        assert (1, 3) not in pairs   # load not ordered by dmb st
        assert (0, 4) not in pairs   # store -> load not ordered

    def test_ld_barrier_orders_prior_loads(self):
        b = ThreadBuilder(0)
        b.load("r0", X).store(Y, 1).barrier("ld").store(X, 2)
        pairs = barrier_ordered_pairs(thread_of(b))
        assert (0, 3) in pairs       # load ordered before later store
        assert (1, 3) not in pairs   # prior store unordered by dmb ld

    def test_acquire_load_orders_later(self):
        b = ThreadBuilder(0)
        b.load("r0", X, acquire=True).store(Y, 1)
        assert (0, 1) in barrier_ordered_pairs(thread_of(b))

    def test_release_store_ordered_after_prior(self):
        b = ThreadBuilder(0)
        b.store(X, 1).store(Y, 1, release=True)
        assert (0, 1) in barrier_ordered_pairs(thread_of(b))


class TestPPOAndReorder:
    def test_plain_independent_accesses_may_reorder(self):
        b = ThreadBuilder(0)
        b.load("r0", X).store(Y, 1)
        assert may_reorder(thread_of(b), 0, 1)

    def test_dependent_accesses_cannot_reorder(self):
        b = ThreadBuilder(0)
        b.load("r0", X).store(Y, "r0")
        assert not may_reorder(thread_of(b), 0, 1)

    def test_barrier_blocks_reorder(self):
        b = ThreadBuilder(0)
        b.store(X, 1).barrier("full").store(Y, 1)
        assert not may_reorder(thread_of(b), 0, 2)

    def test_transitive_ppo(self):
        # load -> (data) -> mov -> (data) -> store: closed transitively.
        b = ThreadBuilder(0)
        b.load("r0", X).mov("r1", Reg("r0") + 1).store(Y, "r1")
        assert not may_reorder(thread_of(b), 0, 2)

    def test_ctrl_dependency_orders_store_not_load(self):
        b = ThreadBuilder(0)
        skip = b.fresh_label("skip")
        b.load("r0", X).bz(Reg("r0"), skip).store(Y, 1).label(skip)
        t = thread_of(b)
        ppo = preserved_program_order(t)
        assert (1, 2) in ppo  # branch orders the store
        b2 = ThreadBuilder(0)
        skip2 = b2.fresh_label("skip")
        b2.load("r0", X).bz(Reg("r0"), skip2).load("r1", Y).label(skip2)
        t2 = thread_of(b2)
        assert (1, 2) not in preserved_program_order(t2)  # loads unordered
