"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestShow:
    def test_show_listing(self, capsys):
        code, out = run_cli(capsys, "show", "LB")
        assert code == 0
        assert "thread 0" in out
        assert "postcondition" in out

    def test_show_fuzzy_match(self, capsys):
        code, out = run_cli(capsys, "show", "Example3-vcpu-switch[buggy]")
        assert code == 0
        assert "vcpu" in out.lower() or "0x30" in out

    def test_unknown_test_exits(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "show", "definitely-not-a-test")


class TestExplain:
    def test_explain_relaxed_outcome(self, capsys):
        code, out = run_cli(capsys, "explain", "LB", "t0_r0=1", "t1_r1=1")
        assert code == 0
        assert "promise list" in out

    def test_explain_default_condition(self, capsys):
        code, out = run_cli(capsys, "explain", "SB")
        assert code == 0
        assert "outcome:" in out

    def test_sc_unreachable_returns_nonzero(self, capsys):
        code, out = run_cli(capsys, "explain", "LB",
                            "t0_r0=1", "t1_r1=1", "--sc")
        assert code == 1
        assert "unreachable" in out


class TestLitmus:
    def test_paper_corpus(self, capsys):
        code, out = run_cli(capsys, "litmus", "--corpus", "paper")
        assert code == 0
        assert "Example2" in out


class TestTables:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1")
        assert code == 0
        assert "VRM framework" in out

    def test_table3(self, capsys):
        code, out = run_cli(capsys, "table3")
        assert code == 0
        assert "Hypercall" in out

    def test_figure8(self, capsys):
        code, out = run_cli(capsys, "figure8")
        assert code == 0
        assert "Kernbench" in out


class TestVerify:
    def test_verify_locks(self, capsys):
        code, out = run_cli(capsys, "verify-locks")
        assert code == 0
        assert "ticket-lock" in out

    def test_verify_sekvm_default(self, capsys):
        code, out = run_cli(capsys, "verify-sekvm")
        assert code == 0
        assert "gen_vmid[verified]" in out


class TestFuzzAndContention:
    def test_fuzz_command(self, capsys):
        code, out = run_cli(capsys, "fuzz", "--count", "5", "--jobs", "1")
        assert code == 0
        assert "5 programs" in out
        assert "all oracles agreed" in out

    def test_fuzz_new_flags(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "fuzz", "--seed", "11", "--budget", "4",
            "--profiles", "fenced,sync", "--corpus", str(tmp_path),
            "--jobs", "1",
        )
        assert code == 0
        assert "seed 11" in out
        assert "fenced/sync" in out

    def test_fuzz_rejects_unknown_profile(self, capsys):
        code, out = run_cli(capsys, "fuzz", "--budget", "1",
                            "--profiles", "bogus")
        assert code == 2
        assert "unknown profile" in out

    def test_contention_command(self, capsys):
        code, out = run_cli(capsys, "contention")
        assert code == 0
        assert "vm-lock" in out


class TestRepairCommand:
    def test_repair_buggy_example(self, capsys):
        code, out = run_cli(capsys, "repair", "Example3-vcpu-switch[buggy]")
        assert code == 0
        assert "minimal repair" in out
        assert "release" in out and "acquire" in out

    def test_repair_robust_example(self, capsys):
        code, out = run_cli(capsys, "repair", "Example3-vcpu-switch[fixed]")
        assert code == 0
        assert "already robust" in out
