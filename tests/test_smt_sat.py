"""Tier-1 tests for the hand-rolled CDCL SAT solver.

The solver is the trust anchor of the whole BMC backend, so it is
cross-checked the same way the engines are: brute-force enumeration
over every assignment of small random formulas, a known-UNSAT family
(pigeonhole), AllSAT model counting through blocking clauses, and the
DIMACS emission used for offline audits.
"""

import itertools
import random

import pytest

from repro.smt.sat import SatStats, Solver


def brute_force(nvars, clauses):
    """All satisfying assignments of *clauses*, by exhaustive search."""
    models = []
    for bits in itertools.product((False, True), repeat=nvars):
        assign = (None,) + bits
        if all(
            any(assign[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            models.append(bits)
    return models


def make_solver(nvars, clauses):
    s = Solver()
    for _ in range(nvars):
        s.new_var()
    for clause in clauses:
        s.add_clause(clause)
    return s


def random_cnf(rng, nvars, nclauses, width=3):
    clauses = []
    for _ in range(nclauses):
        size = rng.randint(1, width)
        lits = []
        for v in rng.sample(range(1, nvars + 1), min(size, nvars)):
            lits.append(v if rng.random() < 0.5 else -v)
        clauses.append(tuple(lits))
    return clauses


class TestBruteForceCrossCheck:
    def test_random_formulas_agree_with_enumeration(self):
        rng = random.Random(20260808)
        checked_sat = checked_unsat = 0
        for _ in range(60):
            nvars = rng.randint(1, 8)
            clauses = random_cnf(rng, nvars, rng.randint(1, 24))
            expected = bool(brute_force(nvars, clauses))
            got = make_solver(nvars, clauses).solve()
            assert got == expected, (nvars, clauses)
            checked_sat += expected
            checked_unsat += not expected
        # The sweep must exercise both answers to mean anything.
        assert checked_sat >= 10 and checked_unsat >= 10

    def test_sat_answer_comes_with_a_real_model(self):
        rng = random.Random(7)
        for _ in range(30):
            nvars = rng.randint(1, 8)
            clauses = random_cnf(rng, nvars, rng.randint(1, 16))
            solver = make_solver(nvars, clauses)
            if not solver.solve():
                continue
            for clause in clauses:
                assert any(solver.value_of(lit) for lit in clause)

    def test_allsat_model_count_matches_enumeration(self):
        rng = random.Random(99)
        for _ in range(20):
            nvars = rng.randint(1, 6)
            clauses = random_cnf(rng, nvars, rng.randint(1, 10))
            expected = len(brute_force(nvars, clauses))
            solver = make_solver(nvars, clauses)
            count = 0
            while solver.solve():
                count += 1
                assert count <= expected, "duplicate model enumerated"
                # Read the model BEFORE blocking it: add_clause
                # backtracks to level 0 and discards the assignment.
                block = [
                    -v if solver.value_of(v) else v
                    for v in range(1, nvars + 1)
                ]
                solver.add_clause(block)
            assert count == expected


class TestKnownFamilies:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_is_unsat(self, holes):
        pigeons = holes + 1
        s = Solver()
        var = {
            (p, h): s.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            s.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert not s.solve()

    def test_chain_of_implications_propagates(self):
        s = Solver()
        vs = [s.new_var() for _ in range(20)]
        for a, b in zip(vs, vs[1:]):
            s.add_clause([-a, b])
        s.add_clause([vs[0]])
        assert s.solve()
        assert all(s.value_of(v) for v in vs)
        s.add_clause([-vs[-1]])
        assert not s.solve()


class TestIncrementalInterface:
    def test_add_clause_after_solve_backtracks_cleanly(self):
        # Regression: blocking clauses arrive while the solver still
        # sits at a decision level from the previous SAT answer.
        s = Solver()
        x, y = s.new_var(), s.new_var()
        s.add_clause([x, y])
        seen = set()
        while s.solve():
            model = (s.value_of(x), s.value_of(y))
            assert model not in seen
            seen.add(model)
            s.add_clause([-x if model[0] else x, -y if model[1] else y])
        assert len(seen) == 3  # every assignment except (False, False)

    def test_empty_clause_makes_formula_unsat(self):
        s = Solver()
        s.new_var()
        assert not s.add_clause([])
        assert not s.solve()

    def test_unknown_literal_is_rejected(self):
        s = Solver()
        s.new_var()
        with pytest.raises(ValueError):
            s.add_clause([2])

    def test_tautology_and_duplicates_are_harmless(self):
        s = Solver()
        x = s.new_var()
        assert s.add_clause([x, -x])
        assert s.add_clause([x, x])
        assert s.solve()
        assert s.value_of(x)


class TestDimacsAndStats:
    def test_dimacs_round_trips_the_clause_set(self):
        clauses = [(1, -2), (2, 3), (-1, -3), (3,)]
        s = make_solver(3, clauses)
        text = s.to_dimacs()
        lines = text.strip().splitlines()
        assert lines[0] == f"p cnf 3 {len(clauses)}"
        parsed = []
        for line in lines[1:]:
            lits = tuple(int(tok) for tok in line.split())
            assert lits[-1] == 0
            parsed.append(lits[:-1])
        assert parsed == clauses
        # The emitted problem has the same answer as the solver.
        assert s.solve() == bool(brute_force(3, parsed))

    def test_dimacs_omits_learned_clauses(self):
        rng = random.Random(3)
        clauses = random_cnf(rng, 6, 30)
        s = make_solver(6, clauses)
        before = s.to_dimacs()
        s.solve()
        assert s.to_dimacs() == before

    def test_stats_track_solver_lifetime(self):
        s = make_solver(4, [(1, 2), (-1, 2), (-2, 3), (-3, 4)])
        assert s.stats.variables == 4
        assert s.solve()
        s.solve()
        assert s.stats.solve_calls == 2
        d = s.stats.as_dict()
        assert d["variables"] == 4 and d["solve_calls"] == 2
        assert set(d) == {
            "variables", "clauses", "learned", "conflicts",
            "decisions", "propagations", "restarts", "solve_calls",
        }
        assert isinstance(s.stats, SatStats)
