"""Tests for program transformations and specification inference."""

import pytest

from repro.errors import ProgramError, VerificationError
from repro.ir import (
    Reg,
    ThreadBuilder,
    build_program,
    merge_programs,
    rename_registers,
    sequence_threads,
    unroll_loops,
)
from repro.ir.program import make_program
from repro.memory import admits, explore_promising, explore_sc
from repro.sekvm.ir_programs import gen_vmid_program, vcpu_switch_program
from repro.vrm import (
    infer_spec,
    inferred_shared_locs,
    verify_program,
    verify_wdrf,
)

X, Y = 0x10, 0x20


class TestRename:
    def test_registers_and_labels_prefixed(self):
        b = ThreadBuilder(0)
        lbl = b.fresh_label("l")
        b.label(lbl).load("r0", X).bnz(Reg("r0"), lbl)
        renamed = rename_registers(b.build(observed=("r0",)), "p_")
        renamed.validate()
        assert renamed.observed == ("p_r0",)
        assert any(getattr(i, "dst", None) == "p_r0" for i in renamed.instrs)

    def test_semantics_preserved(self):
        b = ThreadBuilder(0)
        b.load("r0", X).store(Y, Reg("r0") + 1)
        orig = make_program([b.build(observed=("r0",))],
                            initial_memory={X: 5, Y: 0})
        renamed = make_program(
            [rename_registers(b.build(observed=("r0",)), "z_")],
            initial_memory={X: 5, Y: 0},
        )
        o1 = {b2.memory for b2 in explore_sc(orig).behaviors}
        o2 = {b2.memory for b2 in explore_sc(renamed).behaviors}
        assert o1 == o2


class TestSequence:
    def test_runs_both_fragments(self):
        a = ThreadBuilder(0)
        a.store(X, 1)
        b = ThreadBuilder(0)
        b.load("r0", X)
        seq = sequence_threads(a.build(), b.build(observed=("r0",)))
        program = make_program([seq], initial_memory={X: 0})
        res = explore_sc(program)
        assert admits(res, t0_b_r0=1)


class TestMerge:
    def test_threads_renumbered(self):
        pa = build_program([ThreadBuilder(0).mov("a", 1)], name="A")
        pb = build_program([ThreadBuilder(0).mov("b", 2)], name="B")
        merged = merge_programs(pa, pb)
        assert [t.tid for t in merged.threads] == [0, 1]

    def test_conflicting_initial_memory_rejected(self):
        pa = build_program([ThreadBuilder(0).nop()], initial_memory={X: 1})
        pb = build_program([ThreadBuilder(0).nop()], initial_memory={X: 2})
        with pytest.raises(ProgramError):
            merge_programs(pa, pb)

    def test_composite_kcore_primitives_verify(self):
        """gen_vmid and the vCPU switch running concurrently on three
        CPUs still satisfy the wDRF conditions — a cross-primitive
        composite the per-primitive checks don't cover."""
        composite = merge_programs(
            gen_vmid_program(correct=True, n_cpus=1),
            vcpu_switch_program(correct=True),
            name="kcore.composite",
        )
        spec = infer_spec(
            composite,
            initial_ownership=[(0x30, composite.threads[1].tid)],
        )
        report = verify_wdrf(spec)
        assert report.all_verified, report.describe()

    def test_composite_with_buggy_half_rejected(self):
        composite = merge_programs(
            gen_vmid_program(correct=True, n_cpus=1),
            vcpu_switch_program(correct=False),
            name="kcore.composite-buggy",
        )
        report = verify_program(
            composite,
            initial_ownership=[(0x30, composite.threads[1].tid)],
        )
        assert not report.all_hold


class TestUnroll:
    def test_spin_loop_bounded(self):
        b = ThreadBuilder(0)
        b.spin_until_eq("r", X, 1)
        b.mov("done", 1)
        unrolled = unroll_loops(b.build(observed=("done",)), bound=2)
        unrolled.validate()
        w = ThreadBuilder(1)
        w.store(X, 1, release=True)
        program = make_program([unrolled, w.build()], initial_memory={X: 0})
        res = explore_promising(program)
        assert res.complete
        assert admits(res, t0_done=1)

    def test_bound_must_be_positive(self):
        b = ThreadBuilder(0)
        b.mov("r", 1)
        with pytest.raises(ProgramError):
            unroll_loops(b.build(), bound=0)

    def test_straight_line_unchanged_semantics(self):
        b = ThreadBuilder(0)
        b.store(X, 3).load("r0", X)
        unrolled = unroll_loops(b.build(observed=("r0",)), bound=2)
        program = make_program([unrolled], initial_memory={X: 0})
        assert admits(explore_sc(program), t0_r0=3)


class TestInference:
    def test_shared_locs_from_instrumentation(self):
        program = gen_vmid_program(correct=True)
        assert inferred_shared_locs(program) == (0x20,)

    def test_register_addressed_pull_rejected(self):
        b = ThreadBuilder(0)
        b.mov("a", X).pull(Reg("a")).push(Reg("a"))
        program = build_program([b])
        with pytest.raises(VerificationError):
            inferred_shared_locs(program)

    def test_verify_program_one_call(self):
        assert verify_program(gen_vmid_program(correct=True)).all_verified
        assert not verify_program(gen_vmid_program(correct=False)).all_hold
