"""Tests for KServ's vCPU scheduler over KCore's context protocol."""

import pytest

from repro.errors import HypercallError, KernelPanic
from repro.sekvm import SeKVMSystem, VCpuState, make_image
from repro.sekvm.scheduler import VCpuScheduler


@pytest.fixture
def sched():
    system = SeKVMSystem(total_pages=128, cpus=4)
    image, _ = make_image(1)
    vmids = [system.boot_vm(image, vcpus=2) for _ in range(3)]
    scheduler = VCpuScheduler(system.kcore, cpus=4)
    for vmid in vmids:
        for vcpu in (0, 1):
            scheduler.enqueue(vmid, vcpu)
    return system, scheduler, vmids


class TestScheduling:
    def test_tick_fills_all_cpus(self, sched):
        _, scheduler, _ = sched
        scheduler.tick()
        assert len(scheduler.running) == 4
        assert len(scheduler.ready) == 2

    def test_round_robin_rotates(self, sched):
        _, scheduler, _ = sched
        scheduler.tick()
        first = set(scheduler.running.values())
        scheduler.tick()
        second = set(scheduler.running.values())
        assert first != second    # the queue rotated

    def test_protocol_never_panics_under_scheduling(self, sched):
        system, scheduler, vmids = sched
        scheduler.run_rounds(20)
        scheduler.idle()
        for vmid in vmids:
            for ctx in system.kcore.vms[vmid].vcpus.values():
                assert ctx.state is VCpuState.INACTIVE

    def test_migrations_happen_and_are_counted(self, sched):
        _, scheduler, _ = sched
        scheduler.run_rounds(10)
        assert scheduler.stats.migrations > 0
        assert scheduler.stats.placements >= 40

    def test_context_preserved_across_migration(self, sched):
        system, scheduler, vmids = sched
        scheduler.tick()
        vmid = vmids[0]
        cpu = scheduler.where(vmid, 0)
        assert cpu is not None
        ctx = system.kcore.vms[vmid].vcpus[0]
        ctx.write_reg(cpu, "x0", 1234)
        scheduler.run_rounds(6)   # several migrations later
        new_cpu = scheduler.where(vmid, 0)
        if new_cpu is None:
            scheduler.tick()
            new_cpu = scheduler.where(vmid, 0)
        assert ctx.read_reg(new_cpu, "x0") == 1234

    def test_double_enqueue_rejected(self, sched):
        _, scheduler, vmids = sched
        with pytest.raises(HypercallError):
            scheduler.enqueue(vmids[0], 0)

    def test_remove_running_vcpu(self, sched):
        system, scheduler, vmids = sched
        scheduler.tick()
        scheduler.remove(vmids[0], 0)
        assert scheduler.where(vmids[0], 0) is None
        assert (vmids[0], 0) not in scheduler.ready
        ctx = system.kcore.vms[vmids[0]].vcpus[0]
        assert ctx.state is VCpuState.INACTIVE

    def test_generation_counts_track_switches(self, sched):
        system, scheduler, vmids = sched
        scheduler.run_rounds(5)
        scheduler.idle()
        total_saves = sum(
            ctx.generation
            for vmid in vmids
            for ctx in system.kcore.vms[vmid].vcpus.values()
        )
        assert total_saves == scheduler.stats.preemptions

    def test_bypassing_scheduler_still_protected(self, sched):
        """Even with the scheduler active, a rogue direct run_vcpu of an
        ACTIVE context panics — the protocol is KCore's, not KServ's."""
        system, scheduler, vmids = sched
        scheduler.tick()
        vmid = vmids[0]
        cpu = scheduler.where(vmid, 0)
        with pytest.raises(KernelPanic):
            system.kcore.run_vcpu((cpu + 1) % 4, vmid, 0)
