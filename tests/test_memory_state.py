"""Unit tests for machine-state plumbing (repro.memory.state/datatypes)."""

import pytest

from repro.memory.datatypes import (
    Behavior,
    Fault,
    Message,
    last_write_ts,
    latest_write_ts,
    value_at,
)
from repro.memory.state import (
    ExecState,
    initial_state,
    initial_thread_ctx,
    tdel,
    tget,
    tset,
)


class TestPairTuples:
    def test_tget_default(self):
        assert tget((), "x", 7) == 7
        assert tget((("x", 1),), "x", 7) == 1

    def test_tset_inserts_sorted(self):
        pairs = tset((), "b", 2)
        pairs = tset(pairs, "a", 1)
        assert pairs == (("a", 1), ("b", 2))

    def test_tset_replaces(self):
        pairs = tset((("a", 1),), "a", 9)
        assert pairs == (("a", 9),)

    def test_tdel(self):
        pairs = (("a", 1), ("b", 2))
        assert tdel(pairs, "a") == (("b", 2),)
        assert tdel(pairs, "z") == pairs


class TestTimelineQueries:
    MEM = (
        Message(1, 0x10, 5, 0),
        Message(2, 0x20, 6, 1),
        Message(3, 0x10, 7, 0),
    )

    def test_last_write_before(self):
        assert last_write_ts(self.MEM, 0x10, 3) == 3
        assert last_write_ts(self.MEM, 0x10, 2) == 1
        assert last_write_ts(self.MEM, 0x10, 0) == 0
        assert last_write_ts(self.MEM, 0x30, 3) == 0

    def test_upto_clamped(self):
        assert last_write_ts(self.MEM, 0x20, 99) == 2

    def test_latest(self):
        assert latest_write_ts(self.MEM, 0x10) == 3
        assert latest_write_ts(self.MEM, 0x99) == 0

    def test_value_at(self):
        assert value_at(self.MEM, 0x10, 1, init=0) == 5
        assert value_at(self.MEM, 0x10, 0, init=42) == 42
        with pytest.raises(ValueError):
            value_at(self.MEM, 0x10, 2, init=0)  # ts 2 is for 0x20


class TestExecState:
    def test_initial_state_shape(self):
        s = initial_state(2, initial_ownership=((0x10, 1),))
        assert len(s.threads) == 2
        assert s.ownership == ((0x10, 1),)
        assert s.memory == ()
        assert s.panic is None

    def test_with_thread_replaces_one(self):
        s = initial_state(2)
        ctx = s.thread(1)._replace(pc=5)
        s2 = s.with_thread(1, ctx)
        assert s2.thread(1).pc == 5
        assert s2.thread(0).pc == 0
        assert s.thread(1).pc == 0  # original untouched

    def test_append_and_fulfill(self):
        s = initial_state(1)
        s = s.append_message(Message(1, 0x10, 5, 0, promised=True))
        assert s.memory[0].promised
        s2 = s.fulfill(1)
        assert not s2.memory[0].promised
        assert s.memory[0].promised  # immutability

    def test_states_hashable_and_comparable(self):
        a = initial_state(2)
        b = initial_state(2)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestBehavior:
    def test_pretty_renders_everything(self):
        b = Behavior(
            registers=((0, "r0", 1),),
            memory=((0x10, 2),),
            faults=(Fault(1, 0x80),),
            panic="boom",
        )
        text = b.pretty()
        assert "t0.r0=1" in text
        assert "0x10" in text
        assert "PANIC(boom)" in text
        assert "t1@0x80" in text
