"""Tests for ASCII chart rendering and the --chart CLI paths."""

import pytest

from repro.cli import main
from repro.report import grouped_bars, hbar_chart, series_chart


class TestHBar:
    def test_full_and_empty_bars(self):
        text = hbar_chart([("a", 1.0), ("b", 0.0)], width=10)
        lines = text.splitlines()
        assert "█" * 10 in lines[0]
        assert "·" * 10 in lines[1]

    def test_title_and_values(self):
        text = hbar_chart([("x", 0.5)], title="T", unit="x")
        assert text.startswith("T")
        assert "0.50x" in text

    def test_clamps_above_max(self):
        text = hbar_chart([("x", 2.0)], width=10, max_value=1.0)
        assert "█" * 10 in text


class TestGroupedBars:
    def test_series_order_and_groups(self):
        groups = {"app": {"KVM": 0.9, "SeKVM": 0.8}}
        text = grouped_bars(groups, ("KVM", "SeKVM"))
        assert text.index("KVM") < text.index("SeKVM")
        assert "0.90" in text and "0.80" in text

    def test_missing_series_skipped(self):
        groups = {"app": {"KVM": 0.9}}
        text = grouped_bars(groups, ("KVM", "SeKVM"))
        assert "SeKVM" not in text


class TestSeriesChart:
    def test_axis_labels_and_legend(self):
        text = series_chart([1, 2, 4], {"KVM": [0.9, 0.9, 0.5]})
        assert "o=KVM" in text
        assert "1" in text and "4" in text

    def test_values_placed_high_to_low(self):
        text = series_chart([1, 2], {"s": [1.0, 0.0]}, height=5)
        lines = text.splitlines()
        top_row = next(l for l in lines if l.startswith(" 1.00"))
        bottom_row = next(l for l in lines if l.startswith(" 0.00"))
        assert "o" in top_row
        assert "o" in bottom_row


class TestCliCharts:
    def test_figure8_chart(self, capsys):
        assert main(["figure8", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "█" in out

    def test_figure9_chart(self, capsys):
        assert main(["figure9", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "x=SeKVM" in out