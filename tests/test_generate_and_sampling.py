"""Tests for the random program generator and sampled exploration."""

import pytest

from repro.litmus.generate import GeneratorConfig, random_corpus, random_program
from repro.memory import explore_promising, explore_sc
from repro.memory.sampling import sample_behaviors
from repro.memory.semantics import ModelConfig, PROMISING_ARM, SC


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = random_program(42)
        b = random_program(42)
        assert a.threads == b.threads
        assert random_program(43).threads != a.threads

    def test_corpus_size_and_names(self):
        corpus = random_corpus(5, start_seed=10)
        assert len(corpus) == 5
        assert corpus[0].name == "random[10]"

    def test_config_respected(self):
        cfg = GeneratorConfig(n_threads=3, min_ops=1, max_ops=2,
                              n_locations=1)
        program = random_program(7, cfg)
        assert len(program.threads) == 3
        for thread in program.threads:
            assert len(thread.instrs) <= 2

    @pytest.mark.parametrize("seed", range(0, 30))
    def test_fuzz_sc_subset_of_rm(self, seed):
        """The framework's soundness invariant on random programs."""
        program = random_program(seed)
        sc = explore_sc(program)
        rm = explore_promising(program)
        assert sc.complete and rm.complete
        assert sc.behaviors <= rm.behaviors, program.name


class TestSampling:
    def test_sampled_subset_of_exhaustive(self):
        program = random_program(3)
        exhaustive = explore_promising(program)
        sampled = sample_behaviors(program, PROMISING_ARM, runs=50, seed=1)
        assert sampled.behaviors <= exhaustive.behaviors
        assert not sampled.complete  # sampling never verifies

    def test_sampling_finds_relaxed_bug(self):
        """A random walk finds Example 3's stale context quickly."""
        from repro.litmus import example3_vcpu
        from repro.memory.behaviors import admits

        program = example3_vcpu(correct=False)
        sampled = sample_behaviors(
            program, PROMISING_ARM, runs=300, seed=7
        )
        assert admits(sampled, t1_restored=0)

    def test_sc_sampling_has_no_promises(self):
        program = random_program(5)
        sampled = sample_behaviors(program, SC, runs=30, seed=2)
        exhaustive_sc = explore_sc(program)
        assert sampled.behaviors <= exhaustive_sc.behaviors

    def test_deterministic_given_seed(self):
        program = random_program(9)
        a = sample_behaviors(program, PROMISING_ARM, runs=20, seed=5)
        b = sample_behaviors(program, PROMISING_ARM, runs=20, seed=5)
        assert a.behaviors == b.behaviors
