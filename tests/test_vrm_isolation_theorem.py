"""Tests for condition 6 (isolation), data oracles, the executable
theorems, and the one-call verifier pipeline."""

import pytest

from repro.errors import VerificationError
from repro.ir import MemSpace, OracleRead, ThreadBuilder, build_program
from repro.litmus.catalog import example7_user_to_kernel
from repro.sekvm.ir_programs import gen_vmid_case, vcpu_switch_case
from repro.vrm import (
    DataOracle,
    WDRFSpec,
    check_memory_isolation,
    check_theorem1,
    check_theorem2,
    check_theorem4,
    mask_user_reads,
    verify_and_check_theorem,
    verify_wdrf,
)

KDATA, UDATA = 0x100, 0x600


def mixed_program(kernel_reads_user=False, user_writes_kernel=False,
                  oracle=False):
    t0 = ThreadBuilder(0)
    if oracle:
        t0.oracle_read("r0", UDATA)
    elif kernel_reads_user:
        t0.load("r0", UDATA, space=MemSpace.USER)
    else:
        t0.load("r0", KDATA)
    t1 = ThreadBuilder(1, is_kernel=False)
    if user_writes_kernel:
        t1.store(KDATA, 9, space=MemSpace.USER)
    else:
        t1.store(UDATA, 9, space=MemSpace.USER)
    return build_program(
        [t0, t1],
        observed={0: ["r0"]},
        initial_memory={KDATA: 0, UDATA: 0},
        spaces={KDATA: MemSpace.KERNEL, UDATA: MemSpace.USER},
        name="mixed",
    )


class TestMemoryIsolation:
    def test_clean_program_verifies_strong(self):
        assert check_memory_isolation(mixed_program()).verified

    def test_kernel_read_of_user_fails_strong(self):
        result = check_memory_isolation(mixed_program(kernel_reads_user=True))
        assert not result.holds
        assert "read of user memory" in result.violations[0]

    def test_kernel_raw_read_fails_weak_too(self):
        result = check_memory_isolation(
            mixed_program(kernel_reads_user=True), weak=True
        )
        assert not result.holds
        assert "oracle-masked" in result.violations[0]

    def test_oracle_read_passes_weak(self):
        result = check_memory_isolation(mixed_program(oracle=True), weak=True)
        assert result.verified

    def test_user_write_to_kernel_detected(self):
        result = check_memory_isolation(
            mixed_program(user_writes_kernel=True)
        )
        assert not result.holds
        assert any("kernel location" in v for v in result.violations)


class TestDataOracle:
    def test_scripted_draws_and_tail(self):
        oracle = DataOracle((1, 2))
        assert [oracle.draw() for _ in range(4)] == [1, 2, 2, 2]
        assert oracle.draws == [1, 2, 2, 2]

    def test_reset(self):
        oracle = DataOracle((7,))
        oracle.draw()
        oracle.reset()
        assert oracle.draws == []
        assert oracle.draw() == 7

    def test_replaying_reproduces_reads(self):
        oracle = DataOracle.replaying([5, 6, 7])
        assert [oracle.draw() for _ in range(3)] == [5, 6, 7]

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            DataOracle(())

    def test_mask_user_reads_transforms_kernel_only(self):
        program = mixed_program(kernel_reads_user=True)
        masked = mask_user_reads(program)
        kernel_instrs = masked.kernel_threads()[0].instrs
        assert any(isinstance(i, OracleRead) for i in kernel_instrs)
        # User threads untouched.
        assert masked.user_threads()[0].instrs == (
            program.user_threads()[0].instrs
        )


class TestTheorems:
    def test_theorem2_rejects_programs_with_users(self):
        with pytest.raises(VerificationError):
            check_theorem2(mixed_program())

    def test_theorem2_holds_for_verified_gen_vmid(self):
        case = gen_vmid_case(correct=True)
        assert check_theorem2(case.program).verified

    def test_theorem2_fails_for_buggy_gen_vmid(self):
        case = gen_vmid_case(correct=False)
        result = check_theorem2(case.program)
        assert not result.holds
        assert result.rm_only_behaviors

    def test_theorem1_example7_direct_fails(self):
        program = example7_user_to_kernel(use_oracle=False)
        result = check_theorem1(program)
        assert not result.holds  # user RM behavior reaches the kernel

    def test_theorem4_example7_holds_after_masking(self):
        program = example7_user_to_kernel(use_oracle=False)
        result = check_theorem4(program, oracle_choices=(0, 1, 2))
        assert result.verified

    def test_describe_mentions_status(self):
        case = gen_vmid_case(correct=True)
        text = check_theorem2(case.program).describe()
        assert "HOLDS" in text


class TestVerifierPipeline:
    def test_verified_case_passes_all_conditions(self):
        case = gen_vmid_case(correct=True)
        report = verify_wdrf(case.spec)
        assert report.all_verified, report.describe()

    def test_buggy_case_fails(self):
        case = gen_vmid_case(correct=False)
        report = verify_wdrf(case.spec)
        assert not report.all_hold

    def test_framework_soundness_on_vcpu_switch(self):
        """If the report verifies, the theorem containment must hold."""
        case = vcpu_switch_case(correct=True)
        report, theorem = verify_and_check_theorem(case.spec)
        assert report.all_verified
        assert theorem.holds

    def test_tightness_on_buggy_vcpu_switch(self):
        case = vcpu_switch_case(correct=False)
        report, theorem = verify_and_check_theorem(case.spec)
        assert not report.all_hold
        assert not theorem.holds
