"""Unit tests for SeKVM components: locks, s2page, EL2/stage-2/SMMU
page-table managers, vCPU contexts, VM lifecycle."""

import pytest

from repro.errors import (
    HypercallError,
    KernelPanic,
    SecurityViolation,
    VerificationError,
)
from repro.sekvm import (
    EL2PageTable,
    KCORE,
    KSERV,
    S2PageDB,
    Stage2PageTable,
    TicketLock,
    VCpuContext,
    VCpuState,
    VM,
    VMState,
    image_digest,
    vm_owner,
)
from repro.mmu.smmu import SMMU
from repro.sekvm.smmupt import SMMUPageTableManager


class TestTicketLock:
    def test_acquire_release_cycle(self):
        lock = TicketLock()
        lock.acquire(0)
        assert lock.held
        lock.release(0)
        assert not lock.held
        assert lock.acquisitions == 1

    def test_wrong_releaser_rejected(self):
        lock = TicketLock()
        lock.acquire(0)
        with pytest.raises(RuntimeError):
            lock.release(1)

    def test_reacquire_rejected(self):
        lock = TicketLock()
        lock.acquire(0)
        with pytest.raises(RuntimeError):
            lock.acquire(0)


class TestS2PageDB:
    def test_pages_start_owned_by_kserv(self):
        db = S2PageDB(8)
        assert all(db.owner_of(p) == KSERV for p in range(8))

    def test_donate_and_reclaim(self):
        db = S2PageDB(8)
        db.donate_to_vm(3, vmid=1)
        assert db.owner_of(3) == vm_owner(1)
        db.reclaim(3, scrubbed=True)
        assert db.owner_of(3) == KSERV

    def test_reclaim_without_scrub_refused(self):
        db = S2PageDB(8)
        db.donate_to_vm(3, vmid=1)
        with pytest.raises(SecurityViolation):
            db.reclaim(3, scrubbed=False)

    def test_double_donation_refused(self):
        db = S2PageDB(8)
        db.donate_to_vm(3, vmid=1)
        with pytest.raises(HypercallError):
            db.donate_to_vm(3, vmid=2)

    def test_mapped_page_cannot_be_donated(self):
        db = S2PageDB(8)
        db.note_mapped(3)
        with pytest.raises(HypercallError):
            db.donate_to_vm(3, vmid=1)

    def test_kcore_pages_never_mappable(self):
        db = S2PageDB(8)
        db.reserve_for_kcore(7)
        with pytest.raises(SecurityViolation):
            db.assert_mappable(7, KSERV)

    def test_mappable_requires_matching_owner(self):
        db = S2PageDB(8)
        db.donate_to_vm(2, vmid=1)
        with pytest.raises(HypercallError):
            db.assert_mappable(2, KSERV)
        db.assert_mappable(2, vm_owner(1))

    def test_shared_pages_mappable_by_kserv(self):
        db = S2PageDB(8)
        db.donate_to_vm(2, vmid=1)
        db.mark_shared(2)
        db.assert_mappable(2, KSERV)

    def test_unbalanced_unmap_rejected(self):
        db = S2PageDB(8)
        with pytest.raises(HypercallError):
            db.note_unmapped(0)

    def test_out_of_range_pfn(self):
        db = S2PageDB(8)
        with pytest.raises(HypercallError):
            db.owner_of(9)


class TestEL2PageTable:
    def test_boot_installs_linear_map(self):
        el2 = EL2PageTable(linear_pages=16)
        el2.boot()
        assert all(el2.translate(p) == p for p in range(16))

    def test_boot_once(self):
        el2 = EL2PageTable(linear_pages=4)
        el2.boot()
        with pytest.raises(VerificationError):
            el2.boot()

    def test_set_el2_pt_never_overwrites(self):
        el2 = EL2PageTable(linear_pages=4)
        el2.boot()
        with pytest.raises(VerificationError):
            el2.set_el2_pt(0, 3)   # VA 0 already in linear map

    def test_remap_pfn_contiguous_fresh_region(self):
        el2 = EL2PageTable(linear_pages=8)
        el2.boot()
        base = el2.remap_pfn([5, 2, 7])
        assert [el2.translate(base + i) for i in range(3)] == [5, 2, 7]
        base2 = el2.remap_pfn([1])
        assert base2 == base + 3   # never reuses virtual pages

    def test_remap_before_boot_rejected(self):
        el2 = EL2PageTable(linear_pages=4)
        with pytest.raises(HypercallError):
            el2.remap_pfn([1])

    def test_write_log_is_write_once(self):
        from repro.vrm import audit_write_log

        el2 = EL2PageTable(linear_pages=8)
        el2.boot()
        el2.remap_pfn([5, 6])
        assert audit_write_log(el2.write_log).verified


class TestStage2PageTable:
    def test_set_and_clear(self):
        s2 = Stage2PageTable("vm0", levels=4)
        op = s2.set_s2pt(cpu=0, vpn=0x1234, pfn=0x55)
        assert op.kind == "map"
        assert s2.translate(0x1234) == 0x55
        op = s2.clear_s2pt(cpu=0, vpn=0x1234)
        assert op.kind == "unmap"
        assert op.tlbi and op.barrier_before_tlbi
        assert len(op.writes) == 1
        assert s2.translate(0x1234) is None

    def test_set_refuses_overwrite(self):
        s2 = Stage2PageTable("vm0")
        s2.set_s2pt(0, 1, 2)
        with pytest.raises(HypercallError):
            s2.set_s2pt(0, 1, 3)

    def test_clear_unmapped_rejected(self):
        s2 = Stage2PageTable("vm0")
        with pytest.raises(HypercallError):
            s2.clear_s2pt(0, 9)

    def test_lock_released_on_error(self):
        s2 = Stage2PageTable("vm0")
        with pytest.raises(HypercallError):
            s2.clear_s2pt(0, 9)
        assert not s2.lock.held

    def test_only_3_or_4_levels(self):
        Stage2PageTable("a", levels=3)
        with pytest.raises(HypercallError):
            Stage2PageTable("b", levels=2)

    def test_3_level_uses_fewer_table_pages(self):
        s3 = Stage2PageTable("a", levels=3)
        s4 = Stage2PageTable("b", levels=4)
        for vpn in range(0, 4):
            s3.set_s2pt(0, vpn << 18, vpn + 1)
            s4.set_s2pt(0, vpn << 18, vpn + 1)
        assert s3.table_pages() < s4.table_pages()

    def test_buggy_variants_recorded(self):
        s2 = Stage2PageTable("vm0", buggy_skip_tlbi=True)
        s2.set_s2pt(0, 1, 2)
        op = s2.clear_s2pt(0, 1)
        assert not op.tlbi

    def test_operations_audit_transactional(self):
        from repro.vrm import audit_operation_writes

        s2 = Stage2PageTable("vm0", levels=3)
        s2.set_s2pt(0, 0x123, 7)
        s2.clear_s2pt(0, 0x123)
        for op in s2.operations:
            assert audit_operation_writes(op.writes, op.kind).verified


class TestSMMUPageTableManager:
    def test_set_clear_spt_with_smmu_tlbi(self):
        smmu = SMMU()
        mgr = SMMUPageTableManager(smmu, device_id=1)
        mgr.set_spt(0, iova=0x40, pfn=0x99)
        assert smmu.dma_access(1, 0x40).ppage == 0x99
        op = mgr.clear_spt(0, iova=0x40)
        assert op.tlbi
        assert smmu.dma_access(1, 0x40).faulted
        assert mgr.smmu_tlb_invalidations == 1

    def test_set_refuses_overwrite(self):
        mgr = SMMUPageTableManager(SMMU(), device_id=1)
        mgr.set_spt(0, 1, 2)
        with pytest.raises(HypercallError):
            mgr.set_spt(0, 1, 3)


class TestVCpuContext:
    def test_protocol_roundtrip(self):
        ctx = VCpuContext(vmid=0, vcpu_id=0)
        ctx.activate(cpu=1)
        ctx.write_reg(1, "x0", 42)
        assert ctx.read_reg(1, "x0") == 42
        ctx.deactivate(cpu=1)
        assert ctx.state is VCpuState.INACTIVE

    def test_double_activate_panics(self):
        ctx = VCpuContext(vmid=0, vcpu_id=0)
        ctx.activate(cpu=1)
        with pytest.raises(KernelPanic):
            ctx.activate(cpu=2)

    def test_foreign_cpu_access_panics(self):
        ctx = VCpuContext(vmid=0, vcpu_id=0)
        ctx.activate(cpu=1)
        with pytest.raises(KernelPanic):
            ctx.write_reg(2, "x0", 1)
        with pytest.raises(KernelPanic):
            ctx.read_reg(2, "x0")

    def test_deactivate_by_wrong_cpu_panics(self):
        ctx = VCpuContext(vmid=0, vcpu_id=0)
        ctx.activate(cpu=1)
        with pytest.raises(KernelPanic):
            ctx.deactivate(cpu=2)

    def test_generation_bumps_on_save(self):
        ctx = VCpuContext(vmid=0, vcpu_id=0)
        ctx.activate(1)
        ctx.deactivate(1)
        assert ctx.generation == 1


class TestVM:
    def _vm(self):
        return VM(vmid=1, s2pt=Stage2PageTable("vm1"))

    def test_vcpu_registration(self):
        vm = self._vm()
        vm.add_vcpu(0)
        with pytest.raises(HypercallError):
            vm.add_vcpu(0)
        assert vm.vcpu(0).vcpu_id == 0
        with pytest.raises(HypercallError):
            vm.vcpu(9)

    def test_cannot_run_unverified(self):
        vm = self._vm()
        with pytest.raises(HypercallError):
            vm.mark_running()
        vm.mark_verified()
        vm.mark_running()
        assert vm.state is VMState.RUNNING

    def test_image_digest_sensitive_to_content(self):
        assert image_digest([1, 2]) != image_digest([1, 3])
        assert image_digest([1, 2]) == image_digest([1, 2])
