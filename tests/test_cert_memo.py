"""Certification memoization: bit-identical results, cheaper search.

The contract under test: ``CertMemo`` (and the bisect-based pair-tuple
primitives and static promisability pruning underneath it) is a pure
optimization.  Behavior sets AND the number of states explored must be
identical with ``REPRO_CERT_MEMO=0`` and ``=1``, across the whole
litmus catalog and a fuzzed population of random programs; budget-cut
certification searches must be surfaced, never silently absorbed.
"""

from __future__ import annotations

import pytest

from repro.ir import ThreadBuilder, build_program
from repro.litmus.catalog import full_corpus
from repro.litmus.generate import GeneratorConfig, random_program
from repro.litmus.runner import rm_config
from repro.memory import explore, explore_or_raise
from repro.memory.datatypes import EngineStats
from repro.memory.exploration import ExplorationBudgetExceeded
from repro.memory.semantics import CertMemo, ModelConfig, ProgramCache
from repro.memory.state import tdel, tget, tset
from repro.parallel.pool import plan_jobs


def _explore_both_ways(program, cfg, monkeypatch):
    """Explore once with the memo and once without; return both results."""
    monkeypatch.setenv("REPRO_CERT_MEMO", "1")
    with_memo = explore(program, cfg, por=True)
    monkeypatch.setenv("REPRO_CERT_MEMO", "0")
    without_memo = explore(program, cfg, por=True)
    return with_memo, without_memo


# ---------------------------------------------------------------------------
# memoization is invisible: litmus catalog and fuzzed programs
# ---------------------------------------------------------------------------

def test_memo_invariance_full_litmus_catalog(monkeypatch):
    """Every catalog test explores to the same behaviors AND the same
    state count with and without the certification memo."""
    for test in full_corpus():
        cfg = rm_config(test.max_promises)
        with_memo, without_memo = _explore_both_ways(
            test.program, cfg, monkeypatch
        )
        assert with_memo.behaviors == without_memo.behaviors, test.name
        assert (
            with_memo.states_explored == without_memo.states_explored
        ), test.name
        assert with_memo.complete == without_memo.complete, test.name


def test_memo_invariance_generated_programs(monkeypatch):
    """~50 seeded random programs agree behavior-for-behavior and
    state-for-state with the memo on and off."""
    gen_cfg = GeneratorConfig(n_threads=2, min_ops=2, max_ops=3)
    cfg = ModelConfig(relaxed=True)
    for seed in range(50):
        program = random_program(seed, gen_cfg)
        with_memo, without_memo = _explore_both_ways(
            program, cfg, monkeypatch
        )
        assert with_memo.behaviors == without_memo.behaviors, seed
        assert (
            with_memo.states_explored == without_memo.states_explored
        ), seed


def test_memo_cross_check_mode(monkeypatch):
    """``REPRO_CERT_MEMO_CHECK=1`` recomputes every hit from scratch and
    raises on any disagreement — so a clean run is evidence the memo key
    captures everything certification depends on."""
    monkeypatch.setenv("REPRO_CERT_MEMO", "1")
    monkeypatch.setenv("REPRO_CERT_MEMO_CHECK", "1")
    for test in full_corpus():
        if not test.max_promises:
            continue
        result = explore(test.program, rm_config(test.max_promises), por=True)
        assert result.complete, test.name


def test_engine_stats_reported():
    """A promise-exercising exploration reports stats, with memo hits."""
    x, y = 0x10, 0x20
    t0 = ThreadBuilder(0)
    t0.store(x, 1).load("r0", y)
    t1 = ThreadBuilder(1)
    t1.store(y, 1).load("r1", x)
    program = build_program(
        [t0, t1],
        observed={0: ["r0"], 1: ["r1"]},
        initial_memory={x: 0, y: 0},
    )
    result = explore(program, ModelConfig(relaxed=True), por=True)
    stats = result.stats
    assert stats is not None
    assert stats.certify_calls > 0
    assert stats.candidate_calls > 0
    assert stats.certify_memo_hits > 0  # revisited contexts must hit
    assert stats.successors_generated >= result.states_explored - 1
    assert stats.cert_budget_hits == 0
    round_trip = stats.as_dict()
    assert round_trip["certify_calls"] == stats.certify_calls
    total = EngineStats()
    total.add(stats)
    total.add(stats)
    assert total.certify_calls == 2 * stats.certify_calls


# ---------------------------------------------------------------------------
# budget-cut certification is surfaced, not silently absorbed
# ---------------------------------------------------------------------------

def _promising_program():
    x, y = 0x10, 0x20
    t0 = ThreadBuilder(0)
    t0.store(x, 1).store(y, 1)
    t1 = ThreadBuilder(1)
    t1.load("a", y).load("b", x)
    return build_program(
        [t0, t1],
        observed={1: ["a", "b"]},
        initial_memory={x: 0, y: 0},
    )


def test_cert_budget_hit_marks_incomplete():
    """A certification search cut by ``cert_max_states`` may silently
    shrink the behavior set, so the exploration must refuse to call
    itself complete."""
    cfg = ModelConfig(relaxed=True, cert_max_states=1)
    result = explore(_promising_program(), cfg, por=True)
    assert result.stats is not None
    assert result.stats.cert_budget_hits > 0
    assert not result.complete


def test_cert_budget_hit_reported_by_explore_or_raise():
    cfg = ModelConfig(relaxed=True, cert_max_states=1)
    with pytest.raises(ExplorationBudgetExceeded) as excinfo:
        explore_or_raise(_promising_program(), cfg)
    message = str(excinfo.value)
    assert "certification searches hit" in message
    assert "under-approximation" in message


def test_cert_budget_hits_invariant_under_memo(monkeypatch):
    """Replayed memo entries re-count their budget cut, so the counter
    is identical with the memo on and off."""
    cfg = ModelConfig(relaxed=True, cert_max_states=1)
    with_memo, without_memo = _explore_both_ways(
        _promising_program(), cfg, monkeypatch
    )
    assert with_memo.stats.cert_budget_hits > 0
    assert (
        with_memo.stats.cert_budget_hits
        == without_memo.stats.cert_budget_hits
    )


# ---------------------------------------------------------------------------
# static promisability pruning
# ---------------------------------------------------------------------------

def test_promisable_from_tracks_remaining_stores():
    x, y = 0x10, 0x20
    t0 = ThreadBuilder(0)
    t0.store(x, 1).load("r0", y)
    t1 = ThreadBuilder(1)
    t1.load("a", x).load("b", y)
    program = build_program(
        [t0, t1],
        observed={0: ["r0"], 1: ["a", "b"]},
        initial_memory={x: 0, y: 0},
    )
    cache = ProgramCache(program)
    assert cache.promisable_from(0, 0)       # store still ahead
    assert not cache.promisable_from(0, 1)   # only the load remains
    assert not cache.promisable_from(1, 0)   # load-only thread
    assert not cache.promisable_from(0, 99)  # out of range: halted


# ---------------------------------------------------------------------------
# bisect-based pair-tuple primitives
# ---------------------------------------------------------------------------

def test_tget_edge_cases():
    assert tget((), "x", 0) == 0
    assert tget((), "x", None) is None
    pairs = (("a", 1), ("c", 3))
    assert tget(pairs, "a") == 1
    assert tget(pairs, "c") == 3
    assert tget(pairs, "b", 42) == 42   # between entries
    assert tget(pairs, "0", 42) == 42   # before the head
    assert tget(pairs, "z", 42) == 42   # past the tail


def test_tset_insert_positions_and_replace():
    assert tset((), "m", 1) == (("m", 1),)
    pairs = (("b", 2), ("d", 4))
    assert tset(pairs, "a", 1) == (("a", 1), ("b", 2), ("d", 4))   # head
    assert tset(pairs, "c", 3) == (("b", 2), ("c", 3), ("d", 4))   # middle
    assert tset(pairs, "e", 5) == (("b", 2), ("d", 4), ("e", 5))   # tail
    assert tset(pairs, "b", 9) == (("b", 9), ("d", 4))             # replace
    assert pairs == (("b", 2), ("d", 4))  # inputs are never mutated


def test_tdel_edge_cases():
    assert tdel((), "x") == ()
    pairs = (("a", 1), ("b", 2), ("c", 3))
    assert tdel(pairs, "a") == (("b", 2), ("c", 3))  # head
    assert tdel(pairs, "b") == (("a", 1), ("c", 3))  # middle
    assert tdel(pairs, "c") == (("a", 1), ("b", 2))  # tail
    assert tdel(pairs, "z") == pairs                 # absent: no-op
    assert tdel((("k", 0),), "k") == ()


def test_tset_keeps_sorted_integer_keys():
    pairs = ()
    for key in (5, 1, 3, 2, 4):
        pairs = tset(pairs, key, key * 10)
    assert pairs == ((1, 10), (2, 20), (3, 30), (4, 40), (5, 50))
    assert tget(pairs, 3) == 30
    assert tdel(pairs, 3) == ((1, 10), (2, 20), (4, 40), (5, 50))


# ---------------------------------------------------------------------------
# auto-jobs planning
# ---------------------------------------------------------------------------

def test_plan_jobs_serial_request():
    plan = plan_jobs(1, 100)
    assert plan.workers == 1 and plan.reason == "serial-requested"
    assert plan_jobs(None, 100).workers == 1
    assert plan_jobs(0, 100).workers == 1


def test_plan_jobs_degrades_tiny_batches():
    plan = plan_jobs(8, 1)
    assert plan.workers == 1 and plan.reason == "batch-too-small"


def test_plan_jobs_single_cpu(monkeypatch):
    import repro.parallel.pool as pool

    monkeypatch.setattr(pool.os, "cpu_count", lambda: 1)
    plan = plan_jobs(8, 100)
    assert plan.workers == 1 and plan.reason == "single-cpu"


def test_plan_jobs_fork_amortization(monkeypatch):
    import repro.parallel.pool as pool

    monkeypatch.setattr(pool.os, "cpu_count", lambda: 8)
    monkeypatch.setattr(pool.os, "sched_getaffinity",
                        lambda pid: set(range(8)), raising=False)
    plan = plan_jobs(8, 6)  # 6 items cannot feed 8 workers 2 items each
    assert plan.reason == "fork-amortization"
    assert plan.workers == 3
    assert plan_jobs(8, 2).workers == 1  # degenerate: serial


def test_plan_jobs_parallel(monkeypatch):
    import repro.parallel.pool as pool

    monkeypatch.setattr(pool.os, "cpu_count", lambda: 8)
    monkeypatch.setattr(pool.os, "sched_getaffinity",
                        lambda pid: set(range(8)), raising=False)
    plan = plan_jobs(4, 100)
    assert plan.workers == 4 and plan.reason == "parallel"
    capped = plan_jobs(32, 100)
    assert capped.workers == 8 and capped.reason == "capped-at-cpus"
