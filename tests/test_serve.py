"""Verification-as-a-service: content-addressed job parsing, the hot
tier's LRU eviction policy, admission control, and the server pipeline
(dedup → coalesce → admission → bounded queue → workers) end to end,
over both the programmatic API and real HTTP."""

import asyncio

import pytest

from repro.conformance import build, derive_rng, random_genome
from repro.conformance.digests import behavior_digest
from repro.litmus import full_corpus
from repro.litmus.runner import rm_config
from repro.memory import cached_explore, clear_memory_cache
from repro.serve import (
    JobError,
    ServeConfig,
    VerificationServer,
    execute_job,
    parse_job,
)
from repro.serve.admission import (
    QUEUE_SHED,
    TENANT_BUDGET_EXHAUSTED,
    AdmissionControl,
    TokenBucket,
    shed_error,
)
from repro.serve.hot_tier import HotTier
from repro.serve.traffic import run_traffic, synthetic_workload
from repro.serve.workers import WorkerPool


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EXPLORE_CACHE_DIR", str(tmp_path))
    clear_memory_cache()
    yield tmp_path
    clear_memory_cache()


def _genome_doc(i=0, name=None, profile="plain"):
    genome = random_genome(
        profile, derive_rng(7, f"serve-test-{i}"),
        n_threads=2, min_ops=2, max_ops=3, n_locations=2,
        name=name or f"serve-test-{i}",
    )
    return genome.to_json()


def _explore_body(i=0, name=None, **extra):
    body = {
        "kind": "explore", "genome": _genome_doc(i, name),
        "model": "rm", "max_promises": 2, "backend": "explore",
    }
    body.update(extra)
    return body


def _litmus_name():
    for test in full_corpus():
        if test.name.upper() == "LB":
            return test.name
    return full_corpus()[0].name


# ---------------------------------------------------------------------------
# parsing + content addressing
# ---------------------------------------------------------------------------

class TestParseJob:
    def test_rejects_malformed_requests(self):
        with pytest.raises(JobError):
            parse_job("not an object")
        with pytest.raises(JobError):
            parse_job({})                            # missing kind
        with pytest.raises(JobError):
            parse_job({"kind": "nope"})              # unknown kind
        with pytest.raises(JobError):
            parse_job({"kind": "explore"})           # missing genome
        with pytest.raises(JobError):
            parse_job({"kind": "explore", "genome": {"nope": 1}})
        with pytest.raises(JobError):
            parse_job(_explore_body(model="ppc"))    # unknown model
        parse_job(_explore_body(model="tso"))        # portfolio member: valid
        with pytest.raises(JobError):
            parse_job(_explore_body(backend="z3"))   # unknown backend
        with pytest.raises(JobError):
            parse_job({"kind": "litmus", "test": "no-such-test"})
        with pytest.raises(JobError):
            parse_job({"kind": "wdrf", "case": "no-such-case"})
        with pytest.raises(JobError):
            # wdrf needs a sync-profile genome
            parse_job({"kind": "wdrf", "genome": _genome_doc(0)})

    def test_display_name_does_not_change_key(self):
        """The dedup property: renaming a genome must not defeat
        content addressing, while a different genome must."""
        a = parse_job(_explore_body(0, name="alice"))
        b = parse_job(_explore_body(0, name="bob"))
        other = parse_job(_explore_body(1))
        assert a.key == b.key
        assert a.key != other.key

    def test_backend_and_model_change_key(self):
        base = parse_job(_explore_body(0))
        assert base.key != parse_job(_explore_body(0, backend="auto")).key
        assert base.key != parse_job(_explore_body(0, model="sc")).key

    def test_payload_is_canonical(self):
        """Re-parsing a parsed payload yields the same key (defaults
        are filled in, so the payload is a fixed point)."""
        for body in (
            _explore_body(0),
            {"kind": "litmus", "test": _litmus_name()},
            {"kind": "wdrf", "case": "gen_vmid[verified]"},
        ):
            job = parse_job(body)
            assert parse_job(job.payload).key == job.key

    def test_wdrf_case_keys_are_distinct(self):
        verified = parse_job({"kind": "wdrf", "case": "gen_vmid[verified]"})
        buggy = parse_job({"kind": "wdrf", "case": "gen_vmid[no-barriers]"})
        assert verified.key != buggy.key


class TestExecuteIdentity:
    def test_explore_matches_direct_call(self):
        """A served explore result is bit-identical to calling the
        engine directly — same digest, same counts."""
        from repro.conformance.genome import Genome

        job = parse_job(_explore_body(0))
        doc = execute_job(job.payload)
        direct = cached_explore(
            build(Genome.from_json(job.payload["genome"])), rm_config(2)
        )
        assert doc["behavior_digest"] == behavior_digest(direct)
        assert doc["n_behaviors"] == len(direct.behaviors)
        assert doc["states_explored"] == direct.states_explored
        assert doc["complete"] == direct.complete

    def test_litmus_execution(self):
        job = parse_job({"kind": "litmus", "test": _litmus_name()})
        doc = execute_job(job.payload)
        assert doc["passed"] is True
        assert doc["sc_digest"] != ""
        assert doc["rm_digest"] != ""


# ---------------------------------------------------------------------------
# hot tier eviction policy
# ---------------------------------------------------------------------------

class TestHotTier:
    def test_lru_eviction_order(self):
        """Entry-cap eviction removes the least-recently-*used* entry:
        a get refreshes recency, so the untouched entry goes first."""
        tier = HotTier(max_entries=2, max_bytes=1 << 20)
        tier.put("a", {"v": 1})
        tier.put("b", {"v": 2})
        assert tier.get("a") == {"v": 1}   # refresh a; b is now LRU
        tier.put("c", {"v": 3})
        assert tier.get("b") is None       # evicted
        assert tier.get("a") == {"v": 1}
        assert tier.get("c") == {"v": 3}
        assert tier.evictions == 1

    def test_byte_cap_evicts_oldest_until_fit(self):
        doc = {"pad": "x" * 100}
        import json
        size = len(json.dumps(doc, sort_keys=True).encode())
        tier = HotTier(max_entries=100, max_bytes=2 * size)
        tier.put("a", doc)
        tier.put("b", doc)
        tier.put("c", doc)                 # over budget: a must go
        assert tier.get("a") is None
        assert tier.get("b") is not None
        assert tier.get("c") is not None
        assert tier.bytes <= tier.max_bytes
        assert tier.evictions == 1

    def test_oversized_document_not_admitted(self):
        tier = HotTier(max_entries=10, max_bytes=50)
        tier.put("big", {"pad": "x" * 200})
        assert len(tier) == 0              # kept out, nothing evicted
        assert tier.evictions == 0

    def test_replacing_a_key_keeps_byte_accounting(self):
        tier = HotTier(max_entries=10, max_bytes=1 << 20)
        tier.put("k", {"pad": "x" * 100})
        tier.put("k", {"pad": "y"})        # replace with a smaller doc
        assert len(tier) == 1
        import json
        assert tier.bytes == len(
            json.dumps({"pad": "y"}, sort_keys=True).encode()
        )

    def test_disabled_tier_is_inert(self):
        tier = HotTier(max_entries=0, max_bytes=1 << 20)
        assert not tier.enabled
        tier.put("k", {"v": 1})
        assert tier.get("k") is None
        assert len(tier) == 0

    def test_stats_shape(self):
        tier = HotTier(max_entries=4, max_bytes=1 << 20)
        tier.put("k", {"v": 1})
        tier.get("k")
        tier.get("missing")
        stats = tier.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_token_bucket_spends_and_refills(self):
        clock = {"now": 0.0}
        bucket = TokenBucket(rate=1.0, burst=2.0,
                             clock=lambda: clock["now"])
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()                 # drained
        assert bucket.retry_after() == pytest.approx(1.0)
        clock["now"] = 1.0
        assert bucket.try_take()                     # refilled 1 token
        clock["now"] = 100.0
        bucket.try_take()
        assert bucket.retry_after() <= 1.0           # capped at burst

    def test_rate_zero_disables_throttling(self):
        control = AdmissionControl(rate=0.0, burst=1.0)
        for _ in range(100):
            assert control.admit("anyone") is None
        assert control.stats()["admitted"] == 100

    def test_tenants_are_throttled_independently(self):
        clock = {"now": 0.0}
        control = AdmissionControl(rate=1.0, burst=1.0,
                                   clock=lambda: clock["now"])
        assert control.admit("alice") is None
        refusal = control.admit("alice")             # alice is drained
        assert refusal["error"]["type"] == TENANT_BUDGET_EXHAUSTED
        assert refusal["error"]["tenant"] == "alice"
        assert refusal["error"]["retry_after_seconds"] > 0
        assert control.admit("bob") is None          # bob is unaffected
        assert control.stats() == {
            "tenants": 2, "admitted": 2, "throttled": 1,
        }

    def test_shed_error_shape(self):
        body = shed_error("deadbeef")
        assert body["error"]["type"] == QUEUE_SHED
        assert body["error"]["key"] == "deadbeef"


# ---------------------------------------------------------------------------
# the server pipeline (programmatic, inline pool)
# ---------------------------------------------------------------------------

def _inline_config(**overrides):
    base = dict(port=0, workers=0, queue_limit=64, tenant_rate=0.0)
    base.update(overrides)
    return ServeConfig(**base)


async def _booted(config):
    server = VerificationServer(config)
    await server.start()
    return server


class TestServerPipeline:
    def test_compute_then_hot_hit(self):
        async def scenario():
            server = await _booted(_inline_config())
            try:
                status, first = server.submit(_explore_body(0, name="cold"))
                # the idle inline worker picks the job up immediately
                assert status == 202 and first.status == "running"
                await server.wait(first)
                assert first.status == "done" and first.source == "computed"
                # a renamed duplicate is answered from the hot tier
                status, second = server.submit(
                    _explore_body(0, name="renamed")
                )
                assert status == 200 and second.source == "hot"
                assert second.result == first.result
                stats = server.stats()
                assert stats["counters"]["computed"] == 1
                assert stats["counters"]["hot_hits"] == 1
                assert stats["cache_hit_rate"] == 0.5
                kinds = [e["kind"] for e in first.events]
                assert kinds[0] == "job_queued"
                assert "job_running" in kinds
                assert kinds[-1] == "job_done"
            finally:
                await server.stop()
        asyncio.run(scenario())

    def test_disk_layer_survives_a_restart(self):
        async def scenario():
            first = await _booted(_inline_config())
            try:
                _status, record = first.submit(_explore_body(0))
                await first.wait(record)
                result = record.result
            finally:
                await first.stop()
            second = await _booted(_inline_config())
            try:
                status, replay = second.submit(_explore_body(0))
                assert status == 200 and replay.source == "disk"
                assert replay.result == result
                assert second.counters["disk_hits"] == 1
            finally:
                await second.stop()
        asyncio.run(scenario())

    def test_inflight_duplicates_coalesce(self):
        async def scenario():
            server = await _booted(_inline_config())
            try:
                # No await between the submits, so the first cannot
                # finish in between: the duplicate must attach to the
                # in-flight primary instead of queueing its own work.
                _s1, primary = server.submit(_explore_body(0, name="one"))
                s2, attached = server.submit(_explore_body(0, name="two"))
                assert s2 == 202 and attached is primary
                assert server.counters["coalesced"] == 1
                await server.wait(primary)
                assert primary.status == "done"
                assert server.counters["computed"] == 1
            finally:
                await server.stop()
        asyncio.run(scenario())

    def test_full_queue_sheds_oldest(self):
        async def scenario():
            server = await _booted(_inline_config(queue_limit=1))
            try:
                # Job 1 is dispatched immediately (the single inline
                # worker), job 2 sits in the bounded queue, job 3
                # overflows it: the *oldest* queued job (2) is shed.
                _s, first = server.submit(_explore_body(0))
                _s, second = server.submit(_explore_body(1))
                s3, third = server.submit(_explore_body(2))
                assert second.status == "shed"
                assert second.error["error"]["type"] == QUEUE_SHED
                assert s3 == 202
                await server.wait(first)
                await server.wait(third)
                assert first.status == "done" and third.status == "done"
                assert server.counters["shed"] == 1
            finally:
                await server.stop()
        asyncio.run(scenario())

    def test_warm_traffic_bypasses_a_drained_budget(self):
        async def scenario():
            server = await _booted(
                _inline_config(tenant_rate=1e-9, tenant_burst=1.0)
            )
            try:
                _s, first = server.submit(_explore_body(0))
                await server.wait(first)       # spent the only token
                status, refused = server.submit(_explore_body(1))
                assert status == 429 and refused.status == "shed"
                assert (refused.error["error"]["type"]
                        == TENANT_BUDGET_EXHAUSTED)
                # warm-cache admission control: a repeat of the first
                # job is served from the hot tier, never throttled
                status, warm = server.submit(_explore_body(0, name="again"))
                assert status == 200 and warm.source == "hot"
            finally:
                await server.stop()
        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# HTTP + SSE end to end
# ---------------------------------------------------------------------------

class TestHttpApi:
    def test_submit_status_events_stats(self):
        from repro.serve.client import (
            _request, get_job, get_stats, stream_events, submit_job,
        )

        async def scenario():
            server = await _booted(_inline_config())
            host = server.config.host
            try:
                status, body = await _request(
                    server.config.host, server.port, "GET", "/healthz"
                )
                assert (status, body) == (200, {"ok": True})

                status, body = await submit_job(
                    host, server.port, _explore_body(0), wait=True
                )
                assert status == 200 and body["status"] == "done"
                assert body["source"] == "computed"
                job_id = body["job_id"]

                status, again = await submit_job(
                    host, server.port, _explore_body(0, name="dup"),
                    wait=True,
                )
                assert status == 200 and again["source"] == "hot"
                assert again["result"] == body["result"]

                status, fetched = await get_job(host, server.port, job_id)
                assert status == 200 and fetched["status"] == "done"

                events = [e async for e in stream_events(
                    host, server.port, job_id
                )]
                kinds = [e["kind"] for e in events]
                assert kinds[0] == "job_queued" and kinds[-1] == "job_done"

                stats = await get_stats(host, server.port)
                assert stats["counters"]["hot_hits"] == 1

                status, err = await submit_job(
                    host, server.port, {"kind": "nope"}, wait=True
                )
                assert status == 400
                assert err["error"]["type"] == "invalid_job"

                status, err = await get_job(host, server.port, "j999999")
                assert status == 404
                assert err["error"]["type"] == "unknown_job"
            finally:
                await server.stop()
        asyncio.run(scenario())

    def test_synthetic_traffic_report(self):
        async def scenario():
            server = await _booted(_inline_config())
            try:
                jobs = synthetic_workload(n_jobs=6, unique=2, seed=3)
                # repeats are renamed but content-identical
                assert jobs[0]["genome"]["name"] != jobs[2]["genome"]["name"]
                assert parse_job(jobs[0]).key == parse_job(jobs[2]).key
                assert parse_job(jobs[0]).key != parse_job(jobs[1]).key
                report = await run_traffic(
                    server.config.host, server.port, jobs, clients=3
                )
                assert report["jobs"] == 6 and report["failures"] == 0
                assert report["throughput_jobs_per_s"] > 0
                assert report["p99_ms"] >= report["p50_ms"]
                served_warm = (
                    report["server"]["counters"]["hot_hits"]
                    + report["server"]["counters"]["coalesced"]
                )
                assert served_warm + report["server"]["counters"][
                    "computed"] >= 6
            finally:
                await server.stop()
        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# the persistent forked pool: warm memos across jobs
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not WorkerPool.supported(),
                    reason="fork start method unavailable")
class TestForkedPool:
    def test_repeat_jobs_hit_the_worker_memo(self, monkeypatch):
        """With the hot tier and every disk layer off, a repeat job
        must be answered by the *worker process's* in-memory memo —
        the whole point of keeping workers alive between jobs."""
        monkeypatch.setenv("REPRO_SERVE_DISK", "0")
        monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")

        async def scenario():
            server = await _booted(ServeConfig(
                port=0, workers=1, hot_entries=0,
            ))
            try:
                _s, cold = server.submit(_explore_body(0, name="cold"))
                await server.wait(cold)
                assert cold.status == "done"
                assert cold.source == "computed"
                assert cold.cache_stats["misses"].get("explore") == 1

                _s, warm = server.submit(_explore_body(0, name="warm"))
                await server.wait(warm)
                assert warm.status == "done"
                assert warm.source == "computed"   # hot tier is off...
                assert warm.cache_stats["hits"].get("memo") == 1
                # recomputed from its own payload, so the display name
                # differs; the verdict itself must be identical
                assert (warm.result["behavior_digest"]
                        == cold.result["behavior_digest"])
                assert warm.result["n_behaviors"] == cold.result["n_behaviors"]

                # engine events crossed the process boundary into SSE
                kinds = [e["kind"] for e in cold.events]
                assert "engine_event" in kinds
            finally:
                await server.stop()
        asyncio.run(scenario())
