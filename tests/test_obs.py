"""Tests for the observability layer (repro.obs).

Covers the three contracts the layer makes:

* **Bit-identity** — exploration results (compared via behavior
  digests, states explored, completeness) are identical with tracing
  off, with a ``NullSink``, and with a full ``RecordingSink``, and with
  metrics on or off.
* **Event truth** — the recorded events actually correspond to what the
  engine did (promises certified, barriers executed, TLB invalidations,
  POR ample choices, cache hits).
* **Aggregation** — the metrics registry merges process snapshots
  additively, including across real pool workers.
"""

import multiprocessing

import pytest

from repro.conformance.digests import behavior_digest
from repro.litmus import catalog
from repro.litmus.runner import SC_CFG, rm_config
from repro.memory.cache import cached_explore, clear_memory_cache
from repro.memory.exploration import explore
from repro.obs import metrics, tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullSink, RecordingSink, recording


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing off and metrics off."""
    tracer.uninstall()
    metrics.disable()
    metrics.REGISTRY.reset()
    yield
    tracer.uninstall()
    metrics.disable()
    metrics.REGISTRY.reset()


def _digest_tuple(result):
    return (
        behavior_digest(result),
        result.states_explored,
        result.complete,
        result.stopped_early,
    )


class TestTracerSinks:
    def test_default_sink_is_none(self):
        assert tracer.sink() is None

    def test_install_uninstall(self):
        sink = NullSink()
        assert tracer.install(sink) is sink
        assert tracer.sink() is sink
        tracer.uninstall()
        assert tracer.sink() is None

    def test_recording_restores_previous_sink(self):
        outer = NullSink()
        tracer.install(outer)
        with recording() as rec:
            assert tracer.sink() is rec
        assert tracer.sink() is outer

    def test_recording_sink_caps_events(self):
        sink = RecordingSink(max_events=3)
        for i in range(5):
            sink.emit("k", n=i)
        assert len(sink.events) == 3
        assert sink.dropped == 2
        assert sink.as_json()["dropped"] == 2

    def test_event_payload_roundtrip(self):
        sink = RecordingSink()
        sink.emit("barrier", tid=1, barrier="FULL")
        event = sink.events[0]
        assert event.kind == "barrier"
        assert event.get("tid") == 1
        assert event.get("barrier") == "FULL"
        assert event.get("missing", "d") == "d"
        assert event.as_dict() == {
            "seq": 0, "kind": "barrier", "barrier": "FULL", "tid": 1,
        }

    def test_span_brackets_events(self):
        sink = RecordingSink()
        with sink.span("phase", name_extra=1) as span_id:
            sink.emit("inner")
        kinds = [e.kind for e in sink.events]
        assert kinds == [tracer.SPAN_BEGIN, "inner", tracer.SPAN_END]
        assert sink.events[0].get("span") == span_id
        assert sink.events[2].get("span") == span_id

    def test_write_trace_file(self, tmp_path):
        sink = RecordingSink()
        sink.emit("k", value=1)
        path = tmp_path / "trace.json"
        sink.write(str(path))
        import json

        data = json.loads(path.read_text())
        assert data["schema"] == "repro.obs.trace/v1"
        assert data["events"][0]["kind"] == "k"


class TestBitIdentity:
    """Tracing and metrics must never change engine results."""

    PROGRAMS = ("message_passing", "load_buffering", "store_buffering",
                "coherence_ww")

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_exploration_digest_unchanged_by_tracing(self, name):
        test = getattr(catalog, name)()
        cfg = rm_config(test.max_promises)
        baseline = _digest_tuple(explore(test.program, cfg))
        tracer.install(NullSink())
        null = _digest_tuple(explore(test.program, cfg))
        tracer.uninstall()
        with recording() as rec:
            recorded = _digest_tuple(explore(test.program, cfg))
        assert baseline == null == recorded
        assert rec.events  # the traced run actually emitted

    @pytest.mark.parametrize("name", PROGRAMS[:2])
    def test_exploration_digest_unchanged_by_metrics(self, name):
        test = getattr(catalog, name)()
        cfg = rm_config(test.max_promises)
        baseline = _digest_tuple(explore(test.program, cfg))
        metrics.enable()
        with_metrics = _digest_tuple(explore(test.program, cfg))
        assert baseline == with_metrics

    def test_sc_exploration_digest_unchanged(self):
        test = catalog.message_passing()
        baseline = _digest_tuple(explore(test.program, SC_CFG))
        with recording():
            traced = _digest_tuple(explore(test.program, SC_CFG))
        assert baseline == traced


class TestEventTruth:
    def test_promise_events_match_engine_stats(self):
        test = catalog.message_passing()
        cfg = rm_config(test.max_promises)
        with recording() as rec:
            result = explore(test.program, cfg)
        certified = rec.by_kind(tracer.PROMISE_CERTIFIED)
        made = rec.by_kind(tracer.PROMISE_MADE)
        assert len(certified) == result.stats.certify_calls
        assert len(made) == sum(1 for e in certified if e.get("ok"))
        assert all(e.get("loc") is not None for e in made)

    def test_barrier_and_view_advance_events(self):
        test = catalog.store_buffering(dmb=True)  # two explicit DMBs
        cfg = rm_config(test.max_promises)
        with recording() as rec:
            explore(test.program, cfg)
        barriers = rec.by_kind(tracer.BARRIER)
        assert barriers
        assert all(e.get("barrier") for e in barriers)
        advances = rec.by_kind(tracer.VIEW_ADVANCE)
        assert advances  # a DMB after a store must move the frontier
        for event in advances:
            before, after = event.get("vrn")
            assert after >= before

    def test_tlb_invalidate_events(self):
        test = catalog.example6()  # TLBI after page-table update
        cfg = rm_config(test.max_promises)
        with recording() as rec:
            explore(test.program, cfg)
        events = rec.by_kind(tracer.TLB_INVALIDATE)
        assert events
        for event in events:
            lo, hi = event.get("walker_floor")
            assert hi >= lo

    def test_por_ample_events_match_stats(self):
        test = catalog.example3(correct=True)  # passes the POR gate
        cfg = rm_config(test.max_promises)
        with recording() as rec:
            result = explore(test.program, cfg, por=True)
        assert len(rec.by_kind(tracer.POR_AMPLE)) == (
            result.stats.por_ample_hits
        )

    def test_exploration_span(self):
        test = catalog.load_buffering()
        cfg = rm_config(test.max_promises)
        with recording() as rec:
            result = explore(test.program, cfg)
        begins = rec.by_kind(tracer.SPAN_BEGIN)
        ends = rec.by_kind(tracer.SPAN_END)
        assert len(begins) == len(ends) == 1
        assert begins[0].get("name") == "explore"
        assert begins[0].get("program") == test.program.name
        assert ends[0].get("states") == result.states_explored
        assert ends[0].get("behaviors") == len(result.behaviors)

    def test_cache_hit_miss_events(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXPLORE_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        test = catalog.load_buffering()
        cfg = rm_config(test.max_promises)
        with recording() as rec:
            cached_explore(test.program, cfg)
            cached_explore(test.program, cfg)
        misses = rec.by_kind(tracer.CACHE_MISS)
        hits = rec.by_kind(tracer.CACHE_HIT)
        assert len(misses) == 1
        assert len(hits) == 1
        assert hits[0].get("layer") == "memo"


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        for v in (1, 2, 3, 1000):
            reg.histogram("h").observe(v)
        snap = reg.as_dict()
        assert snap["c"] == {"type": "counter", "value": 5}
        assert snap["g"] == {"type": "gauge", "value": 2.5}
        assert snap["h"]["count"] == 4
        assert snap["h"]["min"] == 1
        assert snap["h"]["max"] == 1000
        assert snap["h"]["mean"] == pytest.approx(1006 / 4)

    def test_merge_is_additive(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("h").observe(1)
        b.histogram("h").observe(100)
        b.gauge("g").set(7)
        a.merge(b.snapshot())
        merged = a.as_dict()
        assert merged["n"]["value"] == 5
        assert merged["h"]["count"] == 2
        assert merged["h"]["min"] == 1
        assert merged["h"]["max"] == 100
        assert merged["g"]["value"] == 7

    def test_merge_json_roundtrip(self, tmp_path):
        import json

        a = MetricsRegistry()
        a.counter("x").inc(9)
        a.histogram("h").observe(3.5)
        path = tmp_path / "m.json"
        a.write(str(path))
        data = json.loads(path.read_text())
        b = MetricsRegistry()
        b.merge(data)
        assert b.as_dict()["x"]["value"] == 9
        assert b.as_dict()["h"]["count"] == 1

    def test_enable_disable(self):
        assert not metrics.metrics_enabled()
        metrics.enable()
        assert metrics.metrics_enabled()
        metrics.disable()
        assert not metrics.metrics_enabled()

    def test_absorb_engine_stats(self):
        test = catalog.message_passing()
        cfg = rm_config(test.max_promises)
        metrics.enable()
        result = explore(test.program, cfg)
        snap = metrics.REGISTRY.as_dict()
        assert snap["explore.explorations"]["value"] == 1
        assert (
            snap["explore.states_explored"]["value"]
            == result.states_explored
        )
        assert (
            snap["explore.certify_calls"]["value"]
            == result.stats.certify_calls
        )

    def test_registry_off_by_default(self):
        test = catalog.message_passing()
        explore(test.program, rm_config(test.max_promises))
        assert metrics.REGISTRY.as_dict() == {}


def _square_worker(n):
    """Module-level pool worker that also records a metric."""
    metrics.REGISTRY.counter("worker.calls").inc()
    metrics.REGISTRY.histogram("worker.input").observe(n)
    return n * n


class TestMultiprocessAggregation:
    def test_worker_wrapper_resets_child_registry(self):
        from repro.parallel.pool import _run_with_metrics

        metrics.REGISTRY.counter("stale.parent").inc(100)
        result, snap = _run_with_metrics(_square_worker, 3)
        assert result == 9
        assert "stale.parent" not in snap["metrics"]
        assert snap["metrics"]["worker.calls"]["value"] == 1

    def test_parallel_map_merges_worker_snapshots(self, monkeypatch):
        """Force a real 2-process pool (the CI box may have 1 CPU)."""
        from repro.parallel import pool

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform without fork")
        monkeypatch.setattr(
            pool, "plan_jobs",
            lambda jobs, batch: pool.JobPlan(2, 2, 2, batch, "forced"),
        )
        metrics.enable()
        metrics.REGISTRY.reset()
        results = pool.parallel_map(_square_worker, [1, 2, 3, 4], jobs=2)
        assert results == [1, 4, 9, 16]
        snap = metrics.REGISTRY.as_dict()
        assert snap["worker.calls"]["value"] == 4
        assert snap["worker.input"]["count"] == 4
        assert snap["worker.input"]["min"] == 1
        assert snap["worker.input"]["max"] == 4
        assert snap["pool.items"]["value"] == 4
        assert snap["pool.workers"]["value"] == 2

    def test_parallel_map_metrics_off_unchanged(self, monkeypatch):
        from repro.parallel import pool

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform without fork")
        monkeypatch.setattr(
            pool, "plan_jobs",
            lambda jobs, batch: pool.JobPlan(2, 2, 2, batch, "forced"),
        )
        results = pool.parallel_map(_square_worker, [5, 6], jobs=2)
        assert results == [25, 36]
        assert metrics.REGISTRY.as_dict() == {}
