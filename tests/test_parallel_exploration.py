"""The exploration engine's optimization layers must be invisible:
partial-order reduction, canonical state interning, the persistent
exploration cache, and the multiprocess harness may change cost, never
results.  These tests pin that down against the serial unreduced
baseline."""

import os

import pytest

from repro.ir import ThreadBuilder, build_program
from repro.litmus.catalog import full_corpus
from repro.litmus.runner import SC_CFG, rm_config, run_corpus, run_litmus
from repro.memory import (
    ModelConfig,
    cached_explore,
    clear_memory_cache,
    explore,
    parse_register_key,
    por_eligible,
)
from repro.memory.cache import exploration_key
from repro.parallel import available_cpus, parallel_map, resolve_jobs

X, Y = 0x10, 0x20


def _shard_env_seen_by_worker(_item):
    """Module-level (picklable) probe of the pool child's environment."""
    return os.environ.get("REPRO_SHARD")


class TestPORCrossCheck:
    def test_por_equals_unreduced_on_catalog(self):
        """POR-reduced behavior sets equal the unreduced ones bit for bit
        across the catalog — including the barrier/RMW/TLB tests, where
        the soundness gate must force full exploration."""
        corpus = full_corpus()
        assert len(corpus) >= 20
        gated = 0
        for test in corpus:
            for cfg in (SC_CFG, rm_config(test.max_promises)):
                observe = sorted(loc for loc, _ in test.memory_condition)
                reduced = explore(test.program, cfg,
                                  observe_locs=observe, por=True)
                baseline = explore(test.program, cfg,
                                   observe_locs=observe, por=False)
                assert reduced.behaviors == baseline.behaviors, test.name
                assert reduced.complete == baseline.complete, test.name
                assert reduced.states_explored <= baseline.states_explored
            if not por_eligible(test.program, SC_CFG):
                gated += 1
        # The catalog must exercise the fallback: its barrier/RMW/TLB
        # tests are exactly the programs the POR gate rejects.
        assert gated >= 5

    def test_check_mode_runs_both_searches(self, monkeypatch):
        monkeypatch.setenv("REPRO_POR_CHECK", "1")
        t0 = ThreadBuilder(0)
        t0.store(X, 1).load("r0", Y)
        t1 = ThreadBuilder(1)
        t1.store(Y, 1).load("r1", X)
        program = build_program(
            [t0, t1], observed={0: ["r0"], 1: ["r1"]},
            initial_memory={X: 0, Y: 0},
        )
        result = explore(program, ModelConfig(relaxed=True))
        assert result.complete

    def test_interning_off_is_identical(self, monkeypatch):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).load("r0", Y)
        t1 = ThreadBuilder(1)
        t1.store(Y, 1).load("r1", X)
        program = build_program(
            [t0, t1], observed={0: ["r0"], 1: ["r1"]},
            initial_memory={X: 0, Y: 0},
        )
        cfg = ModelConfig(relaxed=True)
        interned = explore(program, cfg)
        monkeypatch.setenv("REPRO_INTERN", "0")
        plain = explore(program, cfg)
        assert interned.behaviors == plain.behaviors
        assert interned.states_explored == plain.states_explored


class TestBudgetAccounting:
    def test_state_budget_count_is_exact(self):
        threads = []
        for tid in range(3):
            b = ThreadBuilder(tid)
            b.store(X, tid).store(Y, tid).load("a", X).load("b", Y)
            threads.append(b)
        program = build_program(threads, initial_memory={X: 0, Y: 0})
        for budget in (1, 5, 100):
            result = explore(
                program, ModelConfig(relaxed=True, max_states=budget)
            )
            assert not result.complete
            assert result.states_explored == budget

    def test_complete_run_unaffected_by_budget_fix(self):
        b = ThreadBuilder(0)
        b.store(X, 1)
        program = build_program([b], initial_memory={X: 0})
        result = explore(program, ModelConfig(relaxed=False))
        assert result.complete
        assert result.states_explored <= 5


class TestParallelHarness:
    def test_parallel_corpus_identical_and_ordered(self):
        corpus = full_corpus()[:8]
        serial = run_corpus(corpus, jobs=None, cache=False)
        parallel = run_corpus(corpus, jobs=2, cache=False)
        assert [o.test.name for o in serial] == [t.name for t in corpus]
        assert [o.test.name for o in parallel] == [t.name for t in corpus]
        for a, b in zip(serial, parallel):
            assert a.sc.behaviors == b.sc.behaviors
            assert a.rm.behaviors == b.rm.behaviors
            assert a.passed == b.passed

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) == available_cpus()

    def test_parallel_map_preserves_order(self):
        items = list(range(17))
        assert parallel_map(str, items, jobs=4) == [str(i) for i in items]

    def test_parallel_map_serial_fallback(self):
        calls = []
        assert parallel_map(calls.append, [1, 2, 3], jobs=1) == [None] * 3
        assert calls == [1, 2, 3]

    def test_parallel_map_disables_sharding_in_children_only(
        self, monkeypatch
    ):
        # Pool children must see REPRO_SHARD=0 (they cannot fork shard
        # workers) while the parent's environment stays untouched — the
        # knob is pinned by a pool initializer running in the child, not
        # by mutating the shared environment around the pool.
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(range(4)), raising=False)
        monkeypatch.setenv("REPRO_SHARD", "4")
        assert parallel_map(_shard_env_seen_by_worker, [1, 2, 3, 4],
                            jobs=2) == ["0"] * 4
        assert os.environ["REPRO_SHARD"] == "4"


class TestExplorationCache:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXPLORE_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        yield tmp_path
        clear_memory_cache()

    def _program(self, value: int = 1):
        b = ThreadBuilder(0)
        b.store(X, value).load("r0", X)
        return build_program([b], observed={0: ["r0"]},
                             initial_memory={X: 0})

    def test_memo_hit_returns_same_result(self):
        cfg = ModelConfig(relaxed=True)
        first = cached_explore(self._program(), cfg)
        second = cached_explore(self._program(), cfg)
        assert second is first  # in-process memo hit

    def test_disk_round_trip(self, isolated_cache):
        cfg = ModelConfig(relaxed=True)
        first = cached_explore(self._program(), cfg)
        files = list(isolated_cache.glob("*.pkl"))
        assert len(files) == 1
        clear_memory_cache()
        second = cached_explore(self._program(), cfg)
        assert second == first
        assert len(list(isolated_cache.glob("*.pkl"))) == 1

    def test_key_invalidates_on_program_change(self):
        cfg = ModelConfig(relaxed=True)
        k1 = exploration_key(self._program(1), cfg, None, False, True)
        k2 = exploration_key(self._program(2), cfg, None, False, True)
        assert k1 != k2

    def test_key_invalidates_on_config_change(self):
        program = self._program()
        k1 = exploration_key(program, ModelConfig(relaxed=True), None,
                             False, True)
        k2 = exploration_key(program, ModelConfig(relaxed=False), None,
                             False, True)
        k3 = exploration_key(
            program,
            ModelConfig(relaxed=True, max_promises_per_thread=2),
            None, False, True,
        )
        assert len({k1, k2, k3}) == 3

    def test_key_sensitive_to_observe_order(self):
        program = self._program()
        cfg = ModelConfig(relaxed=True)
        k1 = exploration_key(program, cfg, (X, Y), False, True)
        k2 = exploration_key(program, cfg, (Y, X), False, True)
        assert k1 != k2

    def test_cache_false_bypasses(self, isolated_cache):
        cfg = ModelConfig(relaxed=True)
        first = cached_explore(self._program(), cfg, cache=False)
        second = cached_explore(self._program(), cfg, cache=False)
        assert first == second
        assert first is not second
        assert not list(isolated_cache.glob("*.pkl"))

    def test_disabled_disk_layer(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")
        cached_explore(self._program(), ModelConfig(relaxed=True))
        assert not list(isolated_cache.glob("*.pkl"))


class TestRegisterKeyParsing:
    def test_multi_digit_tid(self):
        assert parse_register_key("t10_r1") == (10, "r1")

    def test_underscored_register(self):
        assert parse_register_key("t0_my_reg") == (0, "my_reg")

    @pytest.mark.parametrize("bad", ["r0", "t_r0", "tx_r0", "t0", "0_r0",
                                     "t0-r0", ""])
    def test_malformed_keys_raise(self, bad):
        with pytest.raises(ValueError, match="malformed register key"):
            parse_register_key(bad)

    def test_run_litmus_uses_shared_configs(self):
        test = full_corpus()[0]
        outcome1 = run_litmus(test)
        outcome2 = run_litmus(test)
        assert outcome1.sc.behaviors == outcome2.sc.behaviors
        assert rm_config(test.max_promises) is rm_config(test.max_promises)
