"""Golden-file tests for rendered execution explanations.

The renderer's output is deterministic — :func:`find_execution` walks a
fixed DFS order with sorted promise candidates and no POR — so the full
rendered text of a counterexample explanation can be pinned byte for
byte.  Goldens live in ``tests/golden/``; regenerate after an
intentional renderer or engine change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_render.py

and review the diff like any other code change.
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.litmus import catalog
from repro.memory.behaviors import compare_models
from repro.memory.semantics import PROMISING_ARM
from repro.memory.trace import find_execution
from repro.obs.render import (
    explain_conformance_entry,
    explain_drf_violation,
    explanation_json,
    render_explanation,
)
from repro.sekvm.ir_programs import gen_vmid_case

GOLDEN_DIR = Path(__file__).parent / "golden"
FIXTURE_DIR = Path(__file__).parent / "fixtures"
WITNESS = FIXTURE_DIR / "counterexample-7-18-equivalence.json"


def assert_matches_golden(name: str, text: str) -> None:
    """Compare *text* against the named golden (or regenerate it)."""
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        path.write_text(text)
        return
    assert path.exists(), (
        f"golden file {name} missing — run with REPRO_UPDATE_GOLDEN=1"
    )
    assert text == path.read_text(), (
        f"rendered explanation drifted from {name}; if intentional, "
        "regenerate with REPRO_UPDATE_GOLDEN=1 and review the diff"
    )


def _litmus_explanation(test):
    """Render the first RM-only behavior of a litmus test."""
    comparison = compare_models(test.program)
    assert comparison.rm_only, f"{test.name} shows no relaxed behavior"
    target = sorted(comparison.rm_only)[0]
    trace = find_execution(test.program, PROMISING_ARM, lambda b: b == target)
    assert trace is not None
    return render_explanation(
        trace,
        test.program,
        notes=[f"witness: RM-only behavior {target.pretty()}"],
    ), trace


class TestLitmusGoldens:
    """The issue's two litmus counterexamples, pinned byte-for-byte."""

    def test_message_passing_explanation(self):
        text, trace = _litmus_explanation(catalog.message_passing())
        assert_matches_golden("explain_message_passing.txt", text)
        # The famous mechanism is visible: a certified promise made the
        # flag write observable before the data write.
        assert "promised" in text
        assert trace.states  # step-by-step views were rendered
        assert "views:" in text

    def test_load_buffering_explanation(self):
        text, _trace = _litmus_explanation(catalog.load_buffering())
        assert_matches_golden("explain_load_buffering.txt", text)
        assert "coherence order" in text


class TestConformanceWitnessGolden:
    def test_entry_explanation(self):
        entry = json.loads(WITNESS.read_text())
        trace, program, notes = explain_conformance_entry(entry)
        assert trace is not None
        text = render_explanation(
            trace, program, title=f"counterexample: {WITNESS.name}",
            notes=notes,
        )
        assert_matches_golden("explain_conformance_witness.txt", text)
        assert "oracle: equivalence" in text
        assert "shrunk" in text

    def test_entry_explanation_json_schema(self):
        entry = json.loads(WITNESS.read_text())
        trace, program, notes = explain_conformance_entry(entry)
        data = explanation_json(trace, program, notes=notes)
        assert data["schema"] == "repro.obs.explanation/v1"
        assert data["steps"][0]["step"] == 1
        assert all("views" in s for s in data["steps"])
        assert data["outcome"] == trace.behavior.pretty()
        json.dumps(data)  # must be serializable as-is


class TestWDRFGolden:
    def test_gen_vmid_no_barriers_explanation(self):
        case = gen_vmid_case(correct=False)
        trace = explain_drf_violation(
            case.spec.program,
            case.spec.shared_locs,
            case.spec.initial_ownership,
            **case.spec.overrides(),
        )
        assert trace is not None
        text = render_explanation(
            trace,
            case.spec.program,
            title=f"wDRF violation: {case.name}",
            notes=["condition: drf_kernel (ownership discipline)"],
        )
        assert_matches_golden("explain_wdrf_gen_vmid.txt", text)
        assert "PANIC" in text

    def test_verified_gen_vmid_has_no_violation(self):
        case = gen_vmid_case(correct=True)
        trace = explain_drf_violation(
            case.spec.program,
            case.spec.shared_locs,
            case.spec.initial_ownership,
            **case.spec.overrides(),
        )
        assert trace is None


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestTraceCommand:
    def test_trace_witness(self, capsys):
        code, out = run_cli(capsys, "trace", str(WITNESS))
        assert code == 0
        assert "oracle: equivalence" in out
        assert "coherence order" in out

    def test_trace_witness_json(self, capsys):
        code, out = run_cli(capsys, "trace", str(WITNESS), "--json")
        assert code == 0
        data = json.loads(out)
        assert data["schema"] == "repro.obs.explanation/v1"

    def test_trace_witness_out_file(self, capsys, tmp_path):
        dest = tmp_path / "explain.txt"
        code, out = run_cli(capsys, "trace", str(WITNESS), "--out", str(dest))
        assert code == 0
        assert "coherence order" in dest.read_text()

    def test_trace_wdrf_buggy(self, capsys):
        code, out = run_cli(capsys, "trace", "--wdrf", "gen_vmid[no-barriers]")
        assert code == 0
        assert "PANIC" in out

    def test_trace_wdrf_verified(self, capsys):
        code, out = run_cli(capsys, "trace", "--wdrf", "gen_vmid[verified]")
        assert code == 0
        assert "satisfies" in out

    def test_trace_unknown_case_lists_names(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "trace", "--wdrf", "definitely-not-a-case")

    def test_litmus_trace_and_metrics_out(self, capsys, tmp_path, monkeypatch):
        # `--no-cache` sets REPRO_EXPLORE_CACHE=0 process-wide (fine for
        # a real CLI process); register the key with monkeypatch so the
        # in-process invocation cannot leak it into later tests.
        monkeypatch.setenv("REPRO_EXPLORE_CACHE", "1")
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code, out = run_cli(
            capsys, "litmus", "--corpus", "classic", "--no-cache",
            "--trace", str(trace_path), "--metrics-out", str(metrics_path),
        )
        assert code == 0
        trace_data = json.loads(trace_path.read_text())
        assert trace_data["schema"] == "repro.obs.trace/v1"
        assert any(
            e["kind"] == "promise_made" for e in trace_data["events"]
        )
        metrics_data = json.loads(metrics_path.read_text())
        assert metrics_data["schema"] == "repro.obs.metrics/v1"
        assert metrics_data["metrics"]["explore.explorations"]["value"] >= 1


class TestVMFeatureGoldens:
    """One pinned walk-level explanation per VM behavior family.

    Each golden is the rendered execution reaching the family's litmus
    postcondition under the feature set the catalog entry carries — the
    walk-level annotations (BBM window, cached intermediate descriptor,
    hardware A/D write) are part of the pinned text.
    """

    def _vm_explanation(self, test, title):
        from repro.litmus.runner import litmus_configs
        from repro.memory.behaviors import parse_register_key

        _, rm_cfg = litmus_configs(test)
        wanted_regs = {
            parse_register_key(k): v for k, v in test.condition.items()
        }
        wanted_mem = dict(test.memory_condition)

        def predicate(behavior):
            assignment = {(t, r): v for t, r, v in behavior.registers}
            if not all(
                assignment.get(k) == v for k, v in wanted_regs.items()
            ):
                return False
            memory = dict(behavior.memory)
            return all(
                memory.get(loc) == val for loc, val in wanted_mem.items()
            )

        observe = sorted(loc for loc, _ in test.memory_condition)
        trace = find_execution(
            test.program, rm_cfg, predicate, observe_locs=observe
        )
        assert trace is not None, f"{test.name}: postcondition unreachable"
        return render_explanation(
            trace,
            test.program,
            title=title,
            notes=[f"VM features: {', '.join(test.vm_features)}"],
        ), trace

    def test_bbm_amalgamation_explanation(self):
        text, _trace = self._vm_explanation(
            catalog.vm_bbm(honest=False),
            "VM counterexample: break-before-make skipped",
        )
        assert_matches_golden("explain_vm_bbm.txt", text)
        assert "live -> live page-table overwrite" in text

    def test_walk_cache_explanation(self):
        text, _trace = self._vm_explanation(
            catalog.vm_walk_cache(leaf_only=True),
            "VM counterexample: stale cached intermediate walk entry",
        )
        assert_matches_golden("explain_vm_walk_cache.txt", text)
        assert "cached intermediate descriptor" in text

    def test_dirty_bit_explanation(self):
        text, _trace = self._vm_explanation(
            catalog.vm_dirty_bit(),
            "VM witness: hardware access/dirty-bit update",
        )
        assert_matches_golden("explain_vm_dirty_bit.txt", text)
        assert "hw A/D update" in text
        assert "access/dirty bits" in text

    def test_stage2_tlbi_explanation(self):
        text, _trace = self._vm_explanation(
            catalog.vm_stage2_tlbi(stage=1),
            "VM counterexample: stage-1-only TLBI after stage-2 remap",
        )
        assert_matches_golden("explain_vm_stage2.txt", text)
        assert "outcome" in text
