"""Frontier sharding (``repro.parallel.shard``): the shared visited
filter's conservative-miss protocol, bit-identity with the serial
engine across the litmus catalog and fuzzed programs, monitor-stop
reconstruction, crash cleanup, and the plan/knob plumbing."""

import multiprocessing
import os
import subprocess
import sys
import time
from contextlib import contextmanager
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.conformance import PROFILES, build, derive_rng, random_genome
from repro.errors import VerificationError
from repro.ir import ThreadBuilder, build_program
from repro.litmus import full_corpus
from repro.memory import ModelConfig, explore
from repro.memory.datatypes import ExplorationMonitor, ExplorationResult
from repro.memory.state import initial_state, state_fingerprint
from repro.obs import tracer
from repro.parallel import shard
from repro.parallel.pool import (
    JobPlan,
    available_cpus,
    plan_jobs,
    resolve_shard_jobs,
)
from repro.parallel.shard import SharedVisitedFilter

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="frontier sharding requires the fork start method",
)

#: The verification-visible result fields the sharded engine must
#: reproduce exactly.  ``stats`` is deliberately absent: memo-locality
#: counters legitimately differ (each worker owns its CertMemo).
IDENTITY_FIELDS = (
    "behaviors", "complete", "states_explored", "cut_paths",
    "stopped_early", "terminal_states",
)

X, Y, Z = 0x10, 0x20, 0x30


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    """Sharding tests must time-travel through real explorations."""
    monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")
    monkeypatch.setenv("REPRO_EXPLORE_MEMO", "0")
    monkeypatch.delenv("REPRO_SHARD", raising=False)
    monkeypatch.delenv("REPRO_SHARD_CHECK", raising=False)
    monkeypatch.delenv("REPRO_SHARD_TIMEOUT", raising=False)


@contextmanager
def shard_env(n):
    saved = os.environ.get("REPRO_SHARD")
    os.environ["REPRO_SHARD"] = str(n)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_SHARD", None)
        else:
            os.environ["REPRO_SHARD"] = saved


def assert_identical(serial, sharded, label=""):
    for field in IDENTITY_FIELDS:
        assert getattr(sharded, field) == getattr(serial, field), (
            f"{label}: {field} diverged"
        )


def run_both(program, cfg, shards=2, make_monitors=lambda: None,
             monitor_cut=True):
    """Explore serially and with *shards* workers; return both results
    plus the two monitor lists for snapshot comparison."""
    with shard_env(0):
        serial_monitors = make_monitors()
        serial = explore(program, cfg, monitors=serial_monitors,
                         monitor_cut=monitor_cut)
    with shard_env(shards):
        sharded_monitors = make_monitors()
        sharded = explore(program, cfg, monitors=sharded_monitors,
                          monitor_cut=monitor_cut)
    return serial, sharded, serial_monitors, sharded_monitors


def wide_program():
    """Three threads, wide frontier (~10k relaxed states): guarantees
    the fan-out engages (the seed phase alone cannot drain it) while
    staying well under the default state budget."""
    t0 = ThreadBuilder(0)
    t0.store(X, 1).load("r0", Y)
    t1 = ThreadBuilder(1)
    t1.store(Y, 1).load("r1", Z)
    t2 = ThreadBuilder(2)
    t2.store(Z, 1).load("r2", X)
    return build_program(
        [t0, t1, t2],
        observed={0: ["r0"], 1: ["r1"], 2: ["r2"]},
        initial_memory={X: 0, Y: 0, Z: 0},
    )


class StopAfter(ExplorationMonitor):
    """Stops after a fixed number of valid terminal observations —
    exercises the serial-order replay's early-exit reconstruction."""

    kind = "stop_after"
    extra_state = ("limit",)

    def __init__(self, limit):
        super().__init__()
        self.limit = limit

    def on_terminal(self, state):
        if self.terminals_seen >= self.limit:
            self.stop()


class TestSharedVisitedFilter:
    def test_add_then_hit(self):
        vfilter = SharedVisitedFilter(nslots=1024)
        try:
            assert vfilter.add(0xDEADBEEF) is True
            assert vfilter.add(0xDEADBEEF) is False
            assert vfilter.hits == 1
            assert vfilter.full_misses == 0
        finally:
            vfilter.close()

    def test_distinct_fingerprints_coexist(self):
        vfilter = SharedVisitedFilter(nslots=1024)
        try:
            fps = [state_fingerprint(initial_state(n)) for n in range(1, 9)]
            assert all(vfilter.add(fp) for fp in fps)
            assert not any(vfilter.add(fp) for fp in fps)
        finally:
            vfilter.close()

    def test_full_stripe_degrades_to_conservative_miss(self):
        # One slot per stripe: the second fingerprint hashing to the
        # same slot finds the probe window full.  It must be reported
        # as NEW (duplicated work), never as seen (a dropped subtree).
        vfilter = SharedVisitedFilter(nslots=SharedVisitedFilter.STRIPES)
        try:
            assert vfilter.span == 1
            assert vfilter.add(5) is True
            colliding = 5 + vfilter.nslots
            assert vfilter.add(colliding) is True  # conservative miss
            assert vfilter.full_misses == 1
            # The stored fingerprint still hits exactly.
            assert vfilter.add(5) is False
            assert vfilter.hits == 1
        finally:
            vfilter.close()

    def test_probe_window_fills_then_degrades(self):
        # span (128) > PROBE_LIMIT (64): after 64 same-slot inserts the
        # window is full even though the stripe has free slots.
        nslots = SharedVisitedFilter.STRIPES * 128
        vfilter = SharedVisitedFilter(nslots=nslots)
        try:
            probe = min(SharedVisitedFilter.PROBE_LIMIT, vfilter.span)
            fps = [7 + k * nslots for k in range(probe + 1)]
            for fp in fps[:probe]:
                assert vfilter.add(fp) is True
            assert vfilter.full_misses == 0
            assert vfilter.add(fps[probe]) is True
            assert vfilter.full_misses == 1
            for fp in fps[:probe]:  # nothing stored was evicted
                assert vfilter.add(fp) is False
        finally:
            vfilter.close()

    def test_close_unlinks_segment(self):
        vfilter = SharedVisitedFilter(nslots=1024)
        name = vfilter.name
        vfilter.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_fingerprints_nonzero_and_content_based(self):
        a = state_fingerprint(initial_state(2))
        b = state_fingerprint(initial_state(2))
        c = state_fingerprint(initial_state(3))
        assert a != 0
        assert a == b      # equal states, equal fingerprints
        assert a != c

    def test_hash_colliding_states_get_distinct_fingerprints(self):
        # CPython's tuple hash is a pure function of element hashes and
        # hash(-1) == hash(-2), so these two states collide under any
        # hash()-derived scheme (in *all* bits — two salted passes over
        # the same tuple are fully correlated).  A false filter hit
        # silently drops a subtree, so the fingerprint must be a real
        # digest that still separates them.
        base = initial_state(2)
        s1 = base._replace(walker_floor=-1)
        s2 = base._replace(walker_floor=-2)
        assert hash(s1) == hash(s2)
        assert state_fingerprint(s1) != state_fingerprint(s2)

    def test_memoized_fingerprint_equals_pure(self):
        # The FingerprintMemo is a pure cache: the seed phase and every
        # worker hold different memo instances (or none), so the value
        # must be identical with and without one — across fresh and
        # identity-shared components alike.
        from repro.memory.semantics import ProgramCache
        from repro.memory.state import FingerprintMemo
        from repro.parallel.shard import _successors

        program = wide_program()
        cache = ProgramCache(program)
        cfg = ModelConfig(relaxed=False)
        memo = FingerprintMemo()
        from repro.memory.semantics import CertMemo
        from repro.memory.datatypes import EngineStats
        stats = EngineStats()
        cmemo = CertMemo(interner=None, stats=stats)
        frontier = [initial_state(len(program.threads))]
        checked = 0
        while frontier and checked < 200:
            state = frontier.pop()
            checked += 1
            assert state_fingerprint(state, memo) == state_fingerprint(state)
            frontier.extend(
                _successors(cache, state, cfg, cmemo, None, stats, None)
            )

    def test_fingerprints_independent_of_hash_seed(self):
        # The digest is content-based, so every process agrees on it —
        # even across PYTHONHASHSEED boundaries (strings in the state
        # would perturb any hash()-based fingerprint).
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        code = (
            "from repro.memory.state import initial_state, "
            "state_fingerprint; "
            "print(state_fingerprint("
            "initial_state(2)._replace(panic='boom')))"
        )
        values = set()
        for seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            values.add(int(proc.stdout.strip()))
        local = state_fingerprint(initial_state(2)._replace(panic="boom"))
        assert values == {local}


class TestWorkerCounterDeltas:
    def test_worker_reports_filter_deltas_not_inherited_totals(self):
        # A forked worker inherits the parent's SharedVisitedFilter
        # *object*, whose process-local hits/full_misses still hold the
        # seed phase's counts.  The worker must report deltas from that
        # fork-time baseline — otherwise the parent's aggregation
        # re-adds the seed counts once per worker, inflating the trace
        # event and tripping the filter-saturated fallback early.
        from repro.memory.semantics import ProgramCache

        program = wide_program()
        cache = ProgramCache(program)
        cfg = ModelConfig(relaxed=False)
        observe_locs = sorted(cache.initial_memory)
        vfilter = SharedVisitedFilter(nslots=4096)
        try:
            # Simulate seed-phase residue the fork would inherit.
            vfilter.hits = 7
            vfilter.full_misses = 3
            start = initial_state(len(program.threads))
            fp = state_fingerprint(start)
            vfilter.add(fp)
            ctx = multiprocessing.get_context("fork")
            shared = shard._SharedState(ctx, n_workers=1, budget_left=10**6)
            out = shard._worker_body(
                0, cache, cfg, observe_locs, None, [(fp, start)],
                vfilter, shared, None, True, False,
            )
            assert out.states_explored > 0
            assert out.filter_hits == vfilter.hits - 7
            assert out.full_misses == vfilter.full_misses - 3
        finally:
            vfilter.close()


class TestBitIdentity:
    def test_full_litmus_catalog_two_shards(self):
        for test in full_corpus():
            for relaxed in (False, True):
                cfg = ModelConfig(relaxed=relaxed)
                serial, sharded, _, _ = run_both(test.program, cfg, shards=2)
                assert_identical(serial, sharded,
                                 f"{test.name}/{'RM' if relaxed else 'SC'}")

    def test_litmus_subset_four_shards(self):
        for test in full_corpus()[:10]:
            cfg = ModelConfig(relaxed=True)
            serial, sharded, _, _ = run_both(test.program, cfg, shards=4)
            assert_identical(serial, sharded, f"{test.name}/4shards")

    def test_fifty_fuzzed_programs(self):
        for i in range(50):
            profile = PROFILES[i % len(PROFILES)]
            genome = random_genome(
                profile, derive_rng(2024, "shard-identity", i),
                name=f"fz{i}",
            )
            program = build(genome)
            cfg = ModelConfig(relaxed=True)
            serial, sharded, _, _ = run_both(program, cfg, shards=2)
            assert_identical(serial, sharded, f"fuzz {profile}#{i}")

    def test_wide_program_actually_shards(self):
        # Meta-check: the other tests only prove identity; this one
        # proves the fan-out ran (workers explored states) so identity
        # wasn't trivially "seed finished serially".
        cfg = ModelConfig(relaxed=True)
        # por_ample events alone can flood the default cap; raise it so
        # span_end is never dropped.
        with shard_env(2), tracer.recording(max_events=500_000) as sink:
            result = explore(wide_program(), cfg)
        spans = [e for e in sink.by_kind(tracer.SPAN_END)
                 if e.get("name") == "shard_explore"]
        assert spans, "shard orchestrator never ran"
        assert spans[-1].get("outcome") in ("sharded", "sharded-replay")
        assert result.complete

    def test_budget_cut_states_exact(self):
        # The state budget is order-dependent; the sharded engine must
        # reconstruct serial's exact budget semantics (it falls back).
        cfg = ModelConfig(relaxed=True, max_states=100)
        serial, sharded, _, _ = run_both(wide_program(), cfg, shards=2)
        assert serial.states_explored == 100
        assert not serial.complete
        assert_identical(serial, sharded, "budget-cut")


class TestMonitoredRuns:
    def test_stop_reconstruction_matches_serial(self):
        cfg = ModelConfig(relaxed=True)
        for limit in (1, 3, 10):
            serial, sharded, m_serial, m_sharded = run_both(
                wide_program(), cfg, shards=2,
                make_monitors=lambda limit=limit: [StopAfter(limit)],
            )
            assert_identical(serial, sharded, f"stop@{limit}")
            assert m_serial[0].snapshot() == m_sharded[0].snapshot()

    def test_monitor_cut_false_stays_exhaustive(self):
        cfg = ModelConfig(relaxed=True)
        serial, sharded, m_serial, m_sharded = run_both(
            wide_program(), cfg, shards=2,
            make_monitors=lambda: [StopAfter(1)], monitor_cut=False,
        )
        assert not serial.stopped_early
        assert_identical(serial, sharded, "monitor_cut=False")
        assert m_serial[0].snapshot() == m_sharded[0].snapshot()

    def test_never_stopping_monitor(self):
        cfg = ModelConfig(relaxed=True)
        serial, sharded, m_serial, m_sharded = run_both(
            wide_program(), cfg, shards=2,
            make_monitors=lambda: [StopAfter(10**9)],
        )
        assert_identical(serial, sharded, "no-stop")
        assert m_serial[0].snapshot() == m_sharded[0].snapshot()

    def test_wdrf_reports_bit_identical(self):
        from repro.sekvm.ir_programs import (
            kcore_buggy_cases,
            kcore_verified_cases,
        )
        from repro.vrm.verifier import verify_wdrf

        cases = kcore_verified_cases(2)[:2] + kcore_buggy_cases(2)[:1]
        for case in cases:
            with shard_env(0):
                serial_report = verify_wdrf(case.spec)
            with shard_env(2):
                sharded_report = verify_wdrf(case.spec)
            assert sharded_report == serial_report


class TestCrashCleanup:
    def test_worker_exception_falls_back_and_unlinks(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("injected shard-worker failure")

        monkeypatch.setattr(shard, "_worker_body", boom)
        cfg = ModelConfig(relaxed=True)
        with shard_env(0):
            serial = explore(wide_program(), cfg)
        with shard_env(2):
            sharded = explore(wide_program(), cfg)
        assert_identical(serial, sharded, "worker-exception")
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shard._LAST_FILTER_NAME)

    def test_worker_hard_crash_detected(self, monkeypatch):
        def die(*args, **kwargs):
            os._exit(17)  # no exception handler, no result message

        monkeypatch.setattr(shard, "_worker_body", die)
        monkeypatch.setattr(shard, "_CRASH_GRACE_SECONDS", 0.5)
        cfg = ModelConfig(relaxed=True)
        with shard_env(0):
            serial = explore(wide_program(), cfg)
        with shard_env(2):
            sharded = explore(wide_program(), cfg)
        assert_identical(serial, sharded, "worker-hard-crash")
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shard._LAST_FILTER_NAME)

    def test_wedged_worker_times_out_and_falls_back(self, monkeypatch):
        # A worker that is alive but never reports (e.g. stuck in native
        # code) defeats the liveness poll; with REPRO_SHARD_TIMEOUT set,
        # the deadline aborts the fan-out and the serial fallback runs
        # instead of the parent polling the results queue forever.
        def wedge(*args, **kwargs):
            time.sleep(600)

        monkeypatch.setattr(shard, "_worker_body", wedge)
        monkeypatch.setattr(shard, "_CRASH_GRACE_SECONDS", 0.2)
        monkeypatch.setattr(shard, "_JOIN_TIMEOUT", 0.1)
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "0.3")
        cfg = ModelConfig(relaxed=True)
        with shard_env(0):
            serial = explore(wide_program(), cfg)
        begin = time.monotonic()
        with shard_env(2):
            sharded = explore(wide_program(), cfg)
        assert time.monotonic() - begin < 60  # bounded, no hang
        assert_identical(serial, sharded, "wedged-worker-timeout")
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shard._LAST_FILTER_NAME)


class TestShardCheck:
    def test_cross_check_passes_on_real_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_CHECK", "1")
        cfg = ModelConfig(relaxed=True)
        with shard_env(2):
            result = explore(wide_program(), cfg)
        assert result.complete

    def test_cross_check_catches_divergence(self, monkeypatch):
        def lying_shard_explore(program, cfg, observe_locs=None, por=True,
                                monitors=None, monitor_cut=True, jobs=2):
            return ExplorationResult(
                behaviors=frozenset(),  # drops every behavior
                complete=True,
                states_explored=1,
                cut_paths=0,
            )

        monkeypatch.setattr(shard, "shard_explore", lying_shard_explore)
        monkeypatch.setenv("REPRO_SHARD_CHECK", "1")
        cfg = ModelConfig(relaxed=True)
        with shard_env(2):
            with pytest.raises(VerificationError, match="shard cross-check"):
                explore(wide_program(), cfg)


class TestTraceEvents:
    def test_shard_events_emitted_in_parent(self):
        cfg = ModelConfig(relaxed=True)
        with shard_env(2), tracer.recording(max_events=500_000) as sink:
            explore(wide_program(), cfg)
        hits = sink.by_kind(tracer.VISITED_FILTER_HIT)
        aggregates = [e for e in hits if e.get("aggregate")]
        assert aggregates, "orchestrator must emit the aggregate event"
        # Converging interleavings guarantee cross-shard duplicates.
        assert aggregates[-1].get("hits") > 0

    def test_no_events_without_sink(self):
        # The SINK-is-None guard: a sharded run with no sink installed
        # must not fail and must emit nothing (tracer.SINK stays None).
        cfg = ModelConfig(relaxed=True)
        assert tracer.SINK is None
        with shard_env(2):
            result = explore(wide_program(), cfg)
        assert result.complete


class TestPlanAndKnobs:
    def test_resolve_shard_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD", raising=False)
        assert resolve_shard_jobs() == 1
        monkeypatch.setenv("REPRO_SHARD", "")
        assert resolve_shard_jobs() == 1
        monkeypatch.setenv("REPRO_SHARD", "0")
        assert resolve_shard_jobs() == 1
        monkeypatch.setenv("REPRO_SHARD", "3")
        assert resolve_shard_jobs() == 3
        monkeypatch.setenv("REPRO_SHARD", "-1")
        assert resolve_shard_jobs() == available_cpus()
        monkeypatch.setenv("REPRO_SHARD", "garbage")
        assert resolve_shard_jobs() == 1

    def test_resolve_shard_jobs_explicit(self):
        assert resolve_shard_jobs(0) == 1
        assert resolve_shard_jobs(4) == 4
        assert resolve_shard_jobs(-1) == available_cpus()

    def test_shard_timeout_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_TIMEOUT", raising=False)
        assert shard._shard_timeout() == 0.0
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "2.5")
        assert shard._shard_timeout() == 2.5
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "-3")
        assert shard._shard_timeout() == 0.0
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "garbage")
        assert shard._shard_timeout() == 0.0

    def test_serial_requested_plan_has_shard_fields(self):
        plan = plan_jobs(None, 10, shard_jobs=4)
        assert plan.workers == 1
        assert plan.reason == "serial-requested"
        assert plan.shard_jobs == 4
        assert plan.shard_requested == 4
        assert plan.shard_reason == "intra-exploration"

    def test_corpus_parallel_wins_over_shards(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(range(8)), raising=False)
        plan = plan_jobs(4, 100, shard_jobs=4)
        assert plan.workers == 4
        assert plan.shard_jobs == 1
        assert plan.shard_reason == "corpus-parallel"

    def test_small_spec_declines_shards(self):
        plan = plan_jobs(None, 1, shard_jobs=4, per_item_states=100)
        assert plan.shard_jobs == 1
        assert plan.shard_reason == "spec-too-small"

    def test_legacy_jobplan_construction_still_works(self):
        # test_obs monkeypatches plan_jobs with 5-field constructions;
        # the shard fields must default.
        plan = JobPlan(1, 1, 1, 0, "serial-requested")
        assert plan.shard_jobs == 1
        assert plan.shard_reason == "unsharded"

    def test_maybe_shard_declines_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD", raising=False)
        cfg = ModelConfig(relaxed=True)
        assert shard.maybe_shard_explore(
            wide_program(), cfg, None, False, None, True
        ) is None
        monkeypatch.setenv("REPRO_SHARD", "1")
        assert shard.maybe_shard_explore(
            wide_program(), cfg, None, False, None, True
        ) is None
