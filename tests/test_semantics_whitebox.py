"""White-box tests for the step relation (repro.memory.semantics).

These pin the internal view bookkeeping — coherence floors, barrier
frontier promotion, dependency views, promise certification — directly,
complementing the behavioral litmus suite.
"""

import pytest

from repro.ir import BarrierKind, Reg, ThreadBuilder, build_program
from repro.ir.instructions import Barrier
from repro.memory.semantics import (
    ModelConfig,
    PROMISING_ARM,
    ProgramCache,
    SC,
    _apply_barrier,
    _read_candidates,
    certify,
    collect_promise_candidates,
    execute_instruction,
    promise_steps,
)
from repro.memory.state import initial_state, initial_thread_ctx, tget, tset

X, Y = 0x100, 0x200


def program_and_cache(*builders, init=None):
    program = build_program(list(builders), initial_memory=init or {X: 0, Y: 0})
    return program, ProgramCache(program)


def advance(cache, state, tidx, cfg=PROMISING_ARM):
    succs = execute_instruction(cache, state, tidx, cfg)
    assert succs, "expected at least one successor"
    return succs


class TestViews:
    def test_store_appends_and_updates_coh_vwo(self):
        b = ThreadBuilder(0)
        b.store(X, 5)
        program, cache = program_and_cache(b)
        state = initial_state(1)
        (succ,) = advance(cache, state, 0)
        assert len(succ.memory) == 1
        ctx = succ.threads[0]
        assert tget(ctx.coh, X) == 1
        assert ctx.vwo == 1
        assert ctx.vrn == 0 and ctx.vwn == 0

    def test_load_candidates_respect_coherence(self):
        b = ThreadBuilder(0)
        b.store(X, 1).store(X, 2).load("r0", X)
        program, cache = program_and_cache(b)
        state = initial_state(1)
        (state,) = advance(cache, state, 0)
        (state,) = advance(cache, state, 0)
        ctx = state.threads[0]
        cands = _read_candidates(state, cache, PROMISING_ARM, ctx, X, 0)
        assert cands == [(2, 2)]  # own coh forbids ts 0 and 1

    def test_acquire_load_raises_frontiers(self):
        writer = ThreadBuilder(0)
        writer.store(X, 1)
        reader = ThreadBuilder(1)
        reader.load("r0", X, acquire=True)
        program, cache = program_and_cache(writer, reader)
        state = initial_state(2)
        (state,) = advance(cache, state, 0)
        succs = advance(cache, state, 1)
        fresh = [s for s in succs if tget(s.threads[1].regs, "r0") == 1]
        assert fresh
        ctx = fresh[0].threads[1]
        assert ctx.vrn == 1 and ctx.vwn == 1

    def test_plain_load_does_not_raise_frontiers(self):
        writer = ThreadBuilder(0)
        writer.store(X, 1)
        reader = ThreadBuilder(1)
        reader.load("r0", X)
        program, cache = program_and_cache(writer, reader)
        state = initial_state(2)
        (state,) = advance(cache, state, 0)
        succs = advance(cache, state, 1)
        for s in succs:
            assert s.threads[1].vrn == 0

    def test_dependency_view_carried_through_mov(self):
        writer = ThreadBuilder(0)
        writer.store(X, 1)
        b = ThreadBuilder(1)
        b.load("r0", X).mov("r1", Reg("r0") + 1)
        program, cache = program_and_cache(writer, b)
        state = initial_state(2)
        (state,) = advance(cache, state, 0)
        succs = advance(cache, state, 1)
        read_new = [s for s in succs if tget(s.threads[1].regs, "r0") == 1][0]
        (after_mov,) = advance(cache, read_new, 1)
        assert tget(after_mov.threads[1].rv, "r1") == 1  # view flows via mov


class TestBarrierApplication:
    def _ctx(self, **kw):
        ctx = initial_thread_ctx()
        return ctx._replace(**kw)

    def test_full_barrier(self):
        ctx = self._ctx(vro=3, vwo=5)
        out = _apply_barrier(ctx, BarrierKind.FULL)
        assert out.vrn == 5 and out.vwn == 5

    def test_ld_barrier_promotes_reads_only(self):
        ctx = self._ctx(vro=3, vwo=5)
        out = _apply_barrier(ctx, BarrierKind.LD)
        assert out.vrn == 3 and out.vwn == 3

    def test_st_barrier_promotes_writes_to_writes(self):
        ctx = self._ctx(vro=3, vwo=5)
        out = _apply_barrier(ctx, BarrierKind.ST)
        assert out.vrn == 0 and out.vwn == 5

    def test_isb_promotes_control_frontier(self):
        ctx = self._ctx(vctrl=7)
        out = _apply_barrier(ctx, BarrierKind.ISB)
        assert out.vrn == 7


class TestPromises:
    def test_candidates_are_upcoming_plain_stores(self):
        b = ThreadBuilder(0)
        b.store(X, 1).store(Y, 2, release=True)
        program, cache = program_and_cache(b)
        state = initial_state(1)
        cands = collect_promise_candidates(cache, state, 0, PROMISING_ARM)
        assert (X, 1) in cands
        assert (Y, 2) not in cands  # release stores are not promisable

    def test_certification_fails_for_wrong_value(self):
        from repro.memory.datatypes import Message

        b = ThreadBuilder(0)
        b.store(X, 1)
        program, cache = program_and_cache(b)
        state = initial_state(1)
        bogus = state.append_message(Message(1, X, 99, 0, promised=True))
        bogus = bogus.with_thread(
            0, bogus.threads[0]._replace(promises=(1,))
        )
        assert not certify(cache, bogus, 0, PROMISING_ARM)

    def test_certification_fails_across_dmb_st(self):
        b = ThreadBuilder(0)
        b.store(X, 1).barrier("st").store(Y, 2)
        program, cache = program_and_cache(b)
        state = initial_state(1)
        # Promising Y:=2 before X:=1 executes must be rejected: the
        # barrier forces the fulfillment timestamp above X's write.
        succs = promise_steps(cache, state, 0, PROMISING_ARM)
        promised = {
            (s.memory[-1].loc, s.memory[-1].val) for s in succs
        }
        assert (X, 1) in promised
        assert (Y, 2) not in promised

    def test_promise_limit_respected(self):
        b = ThreadBuilder(0)
        b.store(X, 1).store(Y, 2)
        program, cache = program_and_cache(b)
        state = initial_state(1)
        cfg = ModelConfig(relaxed=True, max_promises_per_thread=1)
        succs = promise_steps(cache, state, 0, cfg)
        for succ in succs:
            assert len(succ.threads[0].promises) == 1
            assert not promise_steps(cache, succ, 0, cfg)

    def test_sc_never_promises(self):
        b = ThreadBuilder(0)
        b.store(X, 1)
        program, cache = program_and_cache(b)
        state = initial_state(1)
        assert promise_steps(cache, state, 0, SC) == []


class TestSCReads:
    def test_sc_read_is_latest_only(self):
        w = ThreadBuilder(0)
        w.store(X, 1).store(X, 2)
        r = ThreadBuilder(1)
        r.load("r0", X)
        program, cache = program_and_cache(w, r)
        state = initial_state(2)
        (state,) = advance(cache, state, 0, SC)
        (state,) = advance(cache, state, 0, SC)
        ctx = state.threads[1]
        cands = _read_candidates(state, cache, SC, ctx, X, 0)
        assert cands == [(2, 2)]
