"""Unit tests for the MMU substrate: page tables, walker, TLB, SMMU."""

import pytest

from repro.errors import ProgramError, SecurityViolation, VerificationError
from repro.mmu import (
    DMAResult,
    MultiLevelPageTable,
    PageTableLayout,
    SMMU,
    TLB,
    WalkResult,
    walk_memory,
)


class TestPageTableLayout:
    def test_map_and_walk(self):
        layout = PageTableLayout(base=0x1000, levels=2, va_bits_per_level=4)
        layout.map(0x23, 0x77)
        result = walk_memory(layout.memory, layout.mmu_config(), 0x23)
        assert not result.is_fault
        assert result.ppage == 0x77

    def test_unmapped_faults(self):
        layout = PageTableLayout(base=0x1000, levels=2, va_bits_per_level=4)
        layout.map(0x23, 0x77)
        assert walk_memory(layout.memory, layout.mmu_config(), 0x24).is_fault

    def test_plan_map_allocates_intermediates(self):
        layout = PageTableLayout(base=0x1000, levels=3, va_bits_per_level=2)
        writes = layout.plan_map(0b010101, 0x99)
        # Fresh 3-level path: two table insertions + one leaf.
        assert len(writes) == 3
        assert writes[-1][1] == 0x99
        # Not applied until asked.
        assert walk_memory(layout.memory, layout.mmu_config(), 0b010101).is_fault
        layout.apply(writes)
        assert walk_memory(
            layout.memory, layout.mmu_config(), 0b010101
        ).ppage == 0x99

    def test_plan_map_reuses_existing_tables(self):
        layout = PageTableLayout(base=0x1000, levels=2, va_bits_per_level=4)
        layout.map(0x20, 0x50)
        writes = layout.plan_map(0x21, 0x51)  # same top-level slot
        assert len(writes) == 1

    def test_entry_path_and_unmap(self):
        layout = PageTableLayout(base=0x1000, levels=2, va_bits_per_level=4)
        layout.map(0x20, 0x50)
        path = layout.entry_path(0x20)
        assert len(path) == 2
        loc, val, level = layout.unmap(0x20)
        assert val == 0 and level == 1
        assert walk_memory(layout.memory, layout.mmu_config(), 0x20).is_fault

    def test_entry_path_missing_table_raises(self):
        layout = PageTableLayout(base=0x1000, levels=2, va_bits_per_level=4)
        with pytest.raises(ProgramError):
            layout.entry_path(0x55)

    def test_rejects_zero_levels(self):
        with pytest.raises(ProgramError):
            PageTableLayout(base=0, levels=0)


class TestMultiLevelPageTable:
    def test_map_walk_unmap_roundtrip(self):
        pt = MultiLevelPageTable(levels=4, va_bits_per_level=9)
        assert pt.walk(0x12345) is None
        pt.map(0x12345, 0x777)
        assert pt.walk(0x12345) == 0x777
        assert pt.unmap(0x12345)
        assert pt.walk(0x12345) is None
        assert not pt.unmap(0x12345)

    def test_refuses_overwrite(self):
        pt = MultiLevelPageTable(levels=3)
        pt.map(5, 10)
        with pytest.raises(VerificationError):
            pt.map(5, 11)
        pt.map(5, 11, overwrite=True)
        assert pt.walk(5) == 11

    def test_write_log_records_old_values(self):
        pt = MultiLevelPageTable(levels=2, va_bits_per_level=4)
        pt.map(0x11, 0x50)
        pt.unmap(0x11)
        assert pt.write_log[-1].old == 0x50
        assert pt.write_log[-1].new == 0

    def test_unmap_keeps_intermediate_tables(self):
        pt = MultiLevelPageTable(levels=3, va_bits_per_level=4)
        pt.map(0x111, 0x50)
        tables_before = pt.table_count()
        pt.unmap(0x111)
        assert pt.table_count() == tables_before

    def test_pool_exhaustion(self):
        pt = MultiLevelPageTable(levels=4, va_bits_per_level=9, pool_pages=2)
        with pytest.raises(VerificationError):
            pt.map(0x123456, 1)  # needs 3 intermediate tables

    def test_mappings_enumeration(self):
        pt = MultiLevelPageTable(levels=2, va_bits_per_level=4)
        pt.map(0x10, 1)
        pt.map(0x22, 2)
        assert sorted(pt.mappings()) == [(0x10, 1), (0x22, 2)]


class TestTLB:
    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.insert(0, 1, 101)
        tlb.insert(0, 2, 102)
        assert tlb.lookup(0, 1) == 101   # touch 1 -> 2 becomes LRU
        tlb.insert(0, 3, 103)
        assert tlb.lookup(0, 2) is None  # evicted
        assert tlb.lookup(0, 1) == 101

    def test_stats(self):
        tlb = TLB(entries=4)
        assert tlb.lookup(0, 1) is None
        tlb.insert(0, 1, 10)
        assert tlb.lookup(0, 1) == 10
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.miss_rate == 0.5

    def test_invalidate_by_vpn_is_global_across_asids(self):
        tlb = TLB(entries=8)
        tlb.insert(0, 5, 1)
        tlb.insert(1, 5, 2)
        tlb.insert(1, 6, 3)
        dropped = tlb.invalidate(vpn=5)
        assert dropped == 2
        assert tlb.lookup(1, 6) == 3

    def test_invalidate_all(self):
        tlb = TLB(entries=8)
        tlb.insert(0, 1, 1)
        tlb.insert(1, 2, 2)
        assert tlb.invalidate() == 2
        assert len(tlb) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TLB(entries=0)


class TestSMMU:
    def test_dma_through_mapping(self):
        smmu = SMMU()
        ctx = smmu.context(device_id=1)
        ctx.pagetable.map(0x40, 0x99)
        result = smmu.dma_access(1, 0x40)
        assert result.ok and result.ppage == 0x99

    def test_dma_fault_when_unmapped(self):
        smmu = SMMU()
        assert smmu.dma_access(1, 0x41).faulted

    def test_smmu_tlb_and_invalidation(self):
        smmu = SMMU()
        ctx = smmu.context(device_id=2)
        ctx.pagetable.map(0x40, 0x99)
        smmu.dma_access(2, 0x40)            # fills the SMMU TLB
        ctx.pagetable.unmap(0x40)
        # Stale SMMU TLB entry still serves DMA until invalidated —
        # exactly why clear_spt must invalidate.
        assert smmu.dma_access(2, 0x40).ok
        ctx.invalidate_tlb(0x40)
        assert smmu.dma_access(2, 0x40).faulted

    def test_disabled_smmu_raises(self):
        smmu = SMMU()
        smmu.enabled = False
        with pytest.raises(SecurityViolation):
            smmu.dma_access(1, 0x40)
