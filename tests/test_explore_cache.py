"""The persistent exploration-cache layer: key sensitivity, disk
round-trips (plain and monitored), and the best-effort degrade paths."""

import multiprocessing
import pickle
import time

import pytest

from repro.ir import ThreadBuilder, build_program
from repro.memory import ModelConfig, cached_explore, clear_memory_cache
from repro.memory.cache import (
    MonitorPassEntry,
    _disk_load,
    _disk_store,
    exploration_key,
    monitored_exploration_key,
)
from repro.memory.datatypes import ExplorationMonitor

X, Y = 0x10, 0x20


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EXPLORE_CACHE_DIR", str(tmp_path))
    clear_memory_cache()
    yield tmp_path
    clear_memory_cache()


def two_thread_program():
    t0 = ThreadBuilder(0)
    t0.store(X, 1).load("r0", Y)
    t1 = ThreadBuilder(1)
    t1.store(Y, 1).load("r1", X)
    return build_program(
        [t0, t1], observed={0: ["r0"], 1: ["r1"]},
        initial_memory={X: 0, Y: 0},
    )


class CountingMonitor(ExplorationMonitor):
    kind = "counting"


class TestKeySensitivity:
    def test_keep_terminal_states_changes_key(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        assert exploration_key(program, cfg, None, False, True) != (
            exploration_key(program, cfg, None, True, True)
        )

    def test_por_flag_changes_key(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        assert exploration_key(program, cfg, None, False, True) != (
            exploration_key(program, cfg, None, False, False)
        )

    def test_observe_order_changes_key(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        assert exploration_key(program, cfg, (X, Y), False, True) != (
            exploration_key(program, cfg, (Y, X), False, True)
        )

    def test_monitored_key_differs_from_plain(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        plain = exploration_key(program, cfg, (), False, True)
        monitored = monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor()]
        )
        assert plain != monitored

    def test_monitored_key_sensitive_to_monitor_set(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        one = monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor()]
        )
        two = monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor(), CountingMonitor()]
        )
        assert one != two

    def test_monitor_cut_changes_key(self):
        # A cut and an exhaustive pass report different exploration
        # stats, so they must not share a cache entry.
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        assert monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor()], monitor_cut=True
        ) != monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor()], monitor_cut=False
        )


class TestDiskRoundTrip:
    def test_plain_round_trip(self, isolated_cache):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        first = cached_explore(program, cfg)
        assert len(list(isolated_cache.glob("*.pkl"))) == 1
        clear_memory_cache()
        second = cached_explore(program, cfg)
        assert second == first

    def test_monitored_round_trip_restores_monitors(
        self, isolated_cache, monkeypatch
    ):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        live = CountingMonitor()
        first = cached_explore(program, cfg, monitors=[live])
        assert live.terminals_seen > 0
        entry = _disk_load(
            monitored_exploration_key(program, cfg, None, True, [live]),
            MonitorPassEntry,
        )
        assert isinstance(entry, MonitorPassEntry)

        clear_memory_cache()

        def boom(*args, **kwargs):  # a hit must not re-explore
            raise AssertionError("cache miss: explore() was called")

        monkeypatch.setattr("repro.memory.cache.explore", boom)
        replayed = CountingMonitor()
        second = cached_explore(program, cfg, monitors=[replayed])
        assert second == first
        assert replayed.snapshot() == live.snapshot()

    def test_corrupted_pickle_degrades_to_recompute(self, isolated_cache):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        first = cached_explore(program, cfg)
        (pkl,) = isolated_cache.glob("*.pkl")
        pkl.write_bytes(b"not a pickle")
        clear_memory_cache()
        second = cached_explore(program, cfg)
        assert second == first

    def test_wrong_type_on_disk_degrades(self, isolated_cache):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        key = exploration_key(program, cfg, None, False, True)
        (isolated_cache / (key + ".pkl")).write_bytes(
            pickle.dumps({"not": "an ExplorationResult"})
        )
        result = cached_explore(program, cfg)
        assert result.complete

    def test_memo_off_recomputes(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")
        monkeypatch.setenv("REPRO_EXPLORE_MEMO", "0")
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        first = cached_explore(program, cfg)
        second = cached_explore(program, cfg)
        assert second == first
        assert second is not first  # no layer served a stored object


class TestCrashSafeDiskStore:
    """The atomic write-and-replace discipline of ``_disk_store``: a
    reader racing any number of writers sees complete entries only, and
    failure paths never leave debris behind."""

    def test_corrupt_entry_is_deleted_on_load(self, isolated_cache):
        # A truncated pickle must be treated as a miss AND removed, or
        # the corpse would poison every future load of its key.
        key = "0" * 64
        path = isolated_cache / (key + ".pkl")
        path.write_bytes(b"truncated-by-a-killed-worker")
        assert _disk_load(key) is None
        assert not path.exists()

    def test_unpicklable_store_cleans_its_temp_file(self, isolated_cache):
        _disk_store("deadbeef", lambda: None)  # lambdas cannot pickle
        assert list(isolated_cache.glob("*.tmp")) == []
        assert list(isolated_cache.glob("*.pkl")) == []

    def test_concurrent_writers_never_corrupt_a_reader(
        self, isolated_cache
    ):
        """Hammer one key from several writer processes while the test
        process reads it in a loop: every read must return the complete
        entry — ``os.replace`` guarantees no torn state in between."""
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        result = cached_explore(program, cfg)  # also seeds the entry
        key = exploration_key(program, cfg, None, False, True)
        ctx = multiprocessing.get_context("fork")
        stop = ctx.Event()

        def hammer():
            while not stop.is_set():
                _disk_store(key, result)

        writers = [ctx.Process(target=hammer, daemon=True)
                   for _ in range(3)]
        for proc in writers:
            proc.start()
        try:
            deadline = time.monotonic() + 0.5
            reads = 0
            while time.monotonic() < deadline:
                assert _disk_load(key) == result
                reads += 1
            assert reads > 0
        finally:
            stop.set()
            for proc in writers:
                proc.join(timeout=10)
        assert _disk_load(key) == result
        assert list(isolated_cache.glob("*.tmp")) == []


class TestShardKeyStability:
    """Frontier sharding (``REPRO_SHARD``) is bit-identical to the
    serial engine, so it deliberately does NOT participate in the cache
    key: entries written serially must hit under sharding and vice
    versa."""

    def test_shard_setting_does_not_change_key(self, monkeypatch):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        monkeypatch.delenv("REPRO_SHARD", raising=False)
        serial_key = exploration_key(program, cfg, None, False, True)
        monkeypatch.setenv("REPRO_SHARD", "2")
        assert exploration_key(program, cfg, None, False, True) == serial_key

    def test_warm_serial_cache_hits_under_sharding(
        self, isolated_cache, monkeypatch
    ):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        monkeypatch.delenv("REPRO_SHARD", raising=False)
        first = cached_explore(program, cfg)
        clear_memory_cache()

        def boom(*args, **kwargs):  # a hit must not re-explore
            raise AssertionError("cache miss: explore() was called")

        monkeypatch.setattr("repro.memory.cache.explore", boom)
        monkeypatch.setenv("REPRO_SHARD", "2")
        second = cached_explore(program, cfg)
        assert second == first
