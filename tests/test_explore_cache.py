"""The persistent exploration-cache layer: key sensitivity, disk
round-trips (plain and monitored), and the best-effort degrade paths."""

import pickle

import pytest

from repro.ir import ThreadBuilder, build_program
from repro.memory import ModelConfig, cached_explore, clear_memory_cache
from repro.memory.cache import (
    MonitorPassEntry,
    _disk_load,
    exploration_key,
    monitored_exploration_key,
)
from repro.memory.datatypes import ExplorationMonitor

X, Y = 0x10, 0x20


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EXPLORE_CACHE_DIR", str(tmp_path))
    clear_memory_cache()
    yield tmp_path
    clear_memory_cache()


def two_thread_program():
    t0 = ThreadBuilder(0)
    t0.store(X, 1).load("r0", Y)
    t1 = ThreadBuilder(1)
    t1.store(Y, 1).load("r1", X)
    return build_program(
        [t0, t1], observed={0: ["r0"], 1: ["r1"]},
        initial_memory={X: 0, Y: 0},
    )


class CountingMonitor(ExplorationMonitor):
    kind = "counting"


class TestKeySensitivity:
    def test_keep_terminal_states_changes_key(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        assert exploration_key(program, cfg, None, False, True) != (
            exploration_key(program, cfg, None, True, True)
        )

    def test_por_flag_changes_key(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        assert exploration_key(program, cfg, None, False, True) != (
            exploration_key(program, cfg, None, False, False)
        )

    def test_observe_order_changes_key(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        assert exploration_key(program, cfg, (X, Y), False, True) != (
            exploration_key(program, cfg, (Y, X), False, True)
        )

    def test_monitored_key_differs_from_plain(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        plain = exploration_key(program, cfg, (), False, True)
        monitored = monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor()]
        )
        assert plain != monitored

    def test_monitored_key_sensitive_to_monitor_set(self):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        one = monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor()]
        )
        two = monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor(), CountingMonitor()]
        )
        assert one != two

    def test_monitor_cut_changes_key(self):
        # A cut and an exhaustive pass report different exploration
        # stats, so they must not share a cache entry.
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        assert monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor()], monitor_cut=True
        ) != monitored_exploration_key(
            program, cfg, (), True, [CountingMonitor()], monitor_cut=False
        )


class TestDiskRoundTrip:
    def test_plain_round_trip(self, isolated_cache):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        first = cached_explore(program, cfg)
        assert len(list(isolated_cache.glob("*.pkl"))) == 1
        clear_memory_cache()
        second = cached_explore(program, cfg)
        assert second == first

    def test_monitored_round_trip_restores_monitors(
        self, isolated_cache, monkeypatch
    ):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        live = CountingMonitor()
        first = cached_explore(program, cfg, monitors=[live])
        assert live.terminals_seen > 0
        entry = _disk_load(
            monitored_exploration_key(program, cfg, None, True, [live]),
            MonitorPassEntry,
        )
        assert isinstance(entry, MonitorPassEntry)

        clear_memory_cache()

        def boom(*args, **kwargs):  # a hit must not re-explore
            raise AssertionError("cache miss: explore() was called")

        monkeypatch.setattr("repro.memory.cache.explore", boom)
        replayed = CountingMonitor()
        second = cached_explore(program, cfg, monitors=[replayed])
        assert second == first
        assert replayed.snapshot() == live.snapshot()

    def test_corrupted_pickle_degrades_to_recompute(self, isolated_cache):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        first = cached_explore(program, cfg)
        (pkl,) = isolated_cache.glob("*.pkl")
        pkl.write_bytes(b"not a pickle")
        clear_memory_cache()
        second = cached_explore(program, cfg)
        assert second == first

    def test_wrong_type_on_disk_degrades(self, isolated_cache):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        key = exploration_key(program, cfg, None, False, True)
        (isolated_cache / (key + ".pkl")).write_bytes(
            pickle.dumps({"not": "an ExplorationResult"})
        )
        result = cached_explore(program, cfg)
        assert result.complete

    def test_memo_off_recomputes(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPLORE_CACHE", "0")
        monkeypatch.setenv("REPRO_EXPLORE_MEMO", "0")
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        first = cached_explore(program, cfg)
        second = cached_explore(program, cfg)
        assert second == first
        assert second is not first  # no layer served a stored object


class TestShardKeyStability:
    """Frontier sharding (``REPRO_SHARD``) is bit-identical to the
    serial engine, so it deliberately does NOT participate in the cache
    key: entries written serially must hit under sharding and vice
    versa."""

    def test_shard_setting_does_not_change_key(self, monkeypatch):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        monkeypatch.delenv("REPRO_SHARD", raising=False)
        serial_key = exploration_key(program, cfg, None, False, True)
        monkeypatch.setenv("REPRO_SHARD", "2")
        assert exploration_key(program, cfg, None, False, True) == serial_key

    def test_warm_serial_cache_hits_under_sharding(
        self, isolated_cache, monkeypatch
    ):
        program, cfg = two_thread_program(), ModelConfig(relaxed=True)
        monkeypatch.delenv("REPRO_SHARD", raising=False)
        first = cached_explore(program, cfg)
        clear_memory_cache()

        def boom(*args, **kwargs):  # a hit must not re-explore
            raise AssertionError("cache miss: explore() was called")

        monkeypatch.setattr("repro.memory.cache.explore", boom)
        monkeypatch.setenv("REPRO_SHARD", "2")
        second = cached_explore(program, cfg)
        assert second == first
