"""Cross-validation of the axiomatic and operational Armv8 models.

The paper's hardware-model soundness rests on the proven equivalence of
Promising Arm and the Armv8 axiomatic model.  These tests reproduce a
slice of that result empirically: on every eligible program — the whole
straight-line litmus corpus plus randomized programs — the two
implementations must produce *identical behavior sets* (registers and
final memory, not just postconditions).
"""

import pytest

from repro.errors import VerificationError
from repro.ir import Reg, ThreadBuilder, build_program
from repro.litmus import classic_corpus, extended_corpus
from repro.litmus.generate import GeneratorConfig, random_program
from repro.memory import explore_promising
from repro.memory.axiomatic import axiomatic_outcomes, eligible

ELIGIBLE = [
    t for t in classic_corpus() + extended_corpus() if eligible(t.program)
]


def operational_outcomes(program):
    result = explore_promising(
        program, observe_locs=sorted(program.initial_memory)
    )
    assert result.complete
    return {(b.registers, b.memory) for b in result.behaviors}


@pytest.mark.parametrize("test", ELIGIBLE, ids=[t.name for t in ELIGIBLE])
def test_corpus_agreement(test):
    ax = axiomatic_outcomes(test.program)
    op = operational_outcomes(test.program)
    assert ax == op, (
        f"{test.name}: axiomatic-only {sorted(ax - op)[:3]}, "
        f"operational-only {sorted(op - ax)[:3]}"
    )


def test_corpus_covers_enough_shapes():
    assert len(ELIGIBLE) >= 18


@pytest.mark.parametrize("seed", range(40))
def test_random_program_agreement(seed):
    """Fuzz the equivalence on random straight-line programs."""
    cfg = GeneratorConfig(n_threads=2, min_ops=2, max_ops=3, n_locations=2)
    program = random_program(seed, cfg)
    if not eligible(program):
        pytest.skip("generated program uses atomics")
    assert axiomatic_outcomes(program) == operational_outcomes(program)


class TestEligibility:
    def test_branches_ineligible(self):
        b = ThreadBuilder(0)
        lbl = b.fresh_label("l")
        b.label(lbl).load("r0", 0x10).bnz(Reg("r0"), lbl)
        program = build_program([b], initial_memory={0x10: 0})
        assert not eligible(program)
        with pytest.raises(VerificationError):
            axiomatic_outcomes(program)

    def test_atomics_ineligible(self):
        b = ThreadBuilder(0)
        b.faa("r0", 0x10)
        program = build_program([b], initial_memory={0x10: 0})
        assert not eligible(program)

    def test_plain_loads_eligible(self):
        b = ThreadBuilder(0)
        b.load("r0", 0x10).store(0x20, "r0").barrier("full").mov("r1", 2)
        program = build_program([b], initial_memory={0x10: 0, 0x20: 0})
        assert eligible(program)


class TestAxiomaticDirect:
    def test_single_thread_deterministic(self):
        b = ThreadBuilder(0)
        b.store(0x10, 5).load("r0", 0x10)
        program = build_program([b], observed={0: ["r0"]},
                                initial_memory={0x10: 0})
        outcomes = axiomatic_outcomes(program)
        assert len(outcomes) == 1
        registers, memory = next(iter(outcomes))
        assert registers == ((0, "r0", 5),)
        assert memory == ((0x10, 5),)

    def test_internal_axiom_forbids_coherence_violation(self):
        # CoRR shape: r0=new, r1=old must be absent.
        t0 = ThreadBuilder(0)
        t0.store(0x10, 1)
        t1 = ThreadBuilder(1)
        t1.load("r0", 0x10).load("r1", 0x10)
        program = build_program(
            [t0, t1], observed={1: ["r0", "r1"]},
            initial_memory={0x10: 0},
        )
        for registers, _memory in axiomatic_outcomes(program):
            assignment = {(t, r): v for t, r, v in registers}
            assert not (
                assignment[(1, "r0")] == 1 and assignment[(1, "r1")] == 0
            )
