"""Regression corpus: litmus behavior-set digests must not drift.

The litmus suite asserts each test's *postcondition* — a single
projection of the behavior set.  This suite pins the entire set: a
SHA-256 digest of every behavior (observing all initialized locations)
per program per model, checked against the committed
``tests/corpus/litmus_digests.json``.  Any engine change that moves
any behavior of any catalog program fails here with the offending
program's name, even if every postcondition still matches.

After an intentional semantics change, regenerate with::

    PYTHONPATH=src python -m repro.conformance.digests tests/corpus/litmus_digests.json
"""

import json
import os

from repro.conformance import behavior_digest, litmus_digests
from repro.litmus.catalog import full_corpus
from repro.memory.cache import cached_explore
from repro.memory.semantics import SC

_CORPUS = os.path.join(os.path.dirname(__file__), "corpus",
                       "litmus_digests.json")


def _expected():
    with open(_CORPUS, "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestLitmusDigests:
    def test_corpus_file_covers_the_whole_catalog(self):
        expected = _expected()
        catalog = {t.name for t in full_corpus()}
        missing = catalog - set(expected)
        stale = set(expected) - catalog
        assert not missing, (
            f"programs missing from the digest corpus (regenerate it): "
            f"{sorted(missing)}"
        )
        assert not stale, (
            f"digest corpus lists programs no longer in the catalog: "
            f"{sorted(stale)}"
        )

    def test_behavior_sets_match_committed_digests(self):
        expected = _expected()
        drifted = []
        for name, models in sorted(litmus_digests().items()):
            for model, digest in models.items():
                if expected[name][model] != digest:
                    drifted.append(f"{name} ({model.upper()})")
        assert not drifted, (
            "behavior sets drifted from tests/corpus/litmus_digests.json "
            f"for: {', '.join(drifted)} — if the change is intentional, "
            "regenerate with `python -m repro.conformance.digests`"
        )


class TestDigestFunction:
    def test_digest_is_deterministic(self):
        test = full_corpus()[0]
        observe = sorted(test.program.initial_memory)
        a = cached_explore(test.program, SC, observe_locs=observe)
        b = cached_explore(test.program, SC, observe_locs=observe)
        assert behavior_digest(a) == behavior_digest(b)

    def test_digest_depends_on_completeness_flag(self):
        from dataclasses import replace

        test = full_corpus()[0]
        observe = sorted(test.program.initial_memory)
        result = cached_explore(test.program, SC, observe_locs=observe)
        truncated = replace(result, complete=False)
        assert behavior_digest(result) != behavior_digest(truncated)
