"""Regression corpus: litmus behavior-set digests must not drift.

The litmus suite asserts each test's *postcondition* — a single
projection of the behavior set.  This suite pins the entire set: a
SHA-256 digest of every behavior (observing all initialized locations)
per program per model, checked against the committed
``tests/corpus/litmus_digests.json``.  Any engine change that moves
any behavior of any catalog program fails here with the offending
program's name, even if every postcondition still matches.

After an intentional semantics change, regenerate with::

    PYTHONPATH=src python -m repro.conformance.digests tests/corpus/litmus_digests.json

The VM-feature verdict matrix (``tests/corpus/vm_features_verdicts.json``,
regenerate with ``python -m repro.vrm.vm_matrix``) is pinned the same
way: any change to where the wDRF conditions stop being sufficient under
the ``REPRO_VM_FEATURES`` families fails here, not silently.

So is the model-portability matrix
(``tests/corpus/portability_verdicts.json``, regenerate with
``python -m repro.vrm.portability``): the per-model litmus verdicts,
the per-model SeKVM wDRF verdicts, and the containment chain
SC ⊆ TSO ⊆ Arm on every row.
"""

import json
import os

from repro.conformance import behavior_digest, litmus_digests
from repro.litmus.catalog import full_corpus
from repro.memory.cache import cached_explore
from repro.memory.semantics import SC

_CORPUS = os.path.join(os.path.dirname(__file__), "corpus",
                       "litmus_digests.json")
_VM_VERDICTS = os.path.join(os.path.dirname(__file__), "corpus",
                            "vm_features_verdicts.json")
_PORTABILITY = os.path.join(os.path.dirname(__file__), "corpus",
                            "portability_verdicts.json")


def _expected():
    with open(_CORPUS, "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestLitmusDigests:
    def test_corpus_file_covers_the_whole_catalog(self):
        expected = _expected()
        catalog = {t.name for t in full_corpus()}
        missing = catalog - set(expected)
        stale = set(expected) - catalog
        assert not missing, (
            f"programs missing from the digest corpus (regenerate it): "
            f"{sorted(missing)}"
        )
        assert not stale, (
            f"digest corpus lists programs no longer in the catalog: "
            f"{sorted(stale)}"
        )

    def test_behavior_sets_match_committed_digests(self):
        expected = _expected()
        drifted = []
        for name, models in sorted(litmus_digests().items()):
            for model, digest in models.items():
                if expected[name][model] != digest:
                    drifted.append(f"{name} ({model.upper()})")
        assert not drifted, (
            "behavior sets drifted from tests/corpus/litmus_digests.json "
            f"for: {', '.join(drifted)} — if the change is intentional, "
            "regenerate with `python -m repro.conformance.digests`"
        )


class TestDigestFunction:
    def test_digest_is_deterministic(self):
        test = full_corpus()[0]
        observe = sorted(test.program.initial_memory)
        a = cached_explore(test.program, SC, observe_locs=observe)
        b = cached_explore(test.program, SC, observe_locs=observe)
        assert behavior_digest(a) == behavior_digest(b)

    def test_digest_depends_on_completeness_flag(self):
        from dataclasses import replace

        test = full_corpus()[0]
        observe = sorted(test.program.initial_memory)
        result = cached_explore(test.program, SC, observe_locs=observe)
        truncated = replace(result, complete=False)
        assert behavior_digest(result) != behavior_digest(truncated)


class TestVMFeatureVerdicts:
    """The committed sufficiency-gap matrix must be reproducible."""

    def _committed(self):
        with open(_VM_VERDICTS, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def test_matrix_matches_committed_verdicts(self):
        from repro.vrm.vm_matrix import build_matrix

        committed = self._committed()
        recomputed = json.loads(json.dumps(build_matrix()))
        assert recomputed["schema"] == committed["schema"]
        assert recomputed == committed, (
            "the VM-feature verdict matrix drifted from "
            "tests/corpus/vm_features_verdicts.json — if the semantics "
            "change is intentional, regenerate with "
            "`python -m repro.vrm.vm_matrix tests/corpus/"
            "vm_features_verdicts.json` and explain the moved verdicts"
        )

    def test_structural_conditions_hold_everywhere(self):
        """Both checkers pass on every scenario under every feature
        combination: the update protocols themselves are disciplined;
        only the *sufficiency* of the conditions moves."""
        for row in self._committed()["rows"]:
            assert row["transactional_holds"], row
            assert row["tlb_sequential_holds"], row
            assert row["complete"], row

    def test_sufficiency_gaps_are_exactly_the_feature_scenarios(self):
        """The stale outcome appears iff the row's feature set enables
        the family its scenario was built to exercise — and never for
        the honest break-before-make protocol."""
        gated = {
            "bbm-amalgamated": "bbm",
            "walk-cache-leaf-tlbi": "walk-cache",
            "stage2-stage1-tlbi": "stage2",
        }
        for row in self._committed()["rows"]:
            feats = set(row["features"].split(",")) if row["features"] else set()
            if row["scenario"] == "bbm-honest":
                assert not row["stale_observed"], row
            else:
                expected = gated[row["scenario"]] in feats
                assert row["stale_observed"] == expected, row


class TestPortabilityVerdicts:
    """The committed model-portfolio matrix must be reproducible and
    certify SC ⊆ TSO ⊆ Arm on every row."""

    def _committed(self):
        with open(_PORTABILITY, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def test_matrix_matches_committed_verdicts(self):
        from repro.vrm.portability import build_matrix

        committed = self._committed()
        recomputed = json.loads(json.dumps(build_matrix()))
        assert recomputed["schema"] == committed["schema"]
        assert recomputed == committed, (
            "the portability matrix drifted from "
            "tests/corpus/portability_verdicts.json — if the semantics "
            "change is intentional, regenerate with "
            "`python -m repro.vrm.portability tests/corpus/"
            "portability_verdicts.json` and explain the moved verdicts"
        )

    def test_containment_certified_on_every_row(self):
        committed = self._committed()
        for section in ("litmus", "sekvm"):
            for row in committed[section]:
                assert row["sc_subset_tso"], row
                assert row["tso_subset_arm"], row

    def test_litmus_rows_cover_the_catalog_and_completed(self):
        committed = self._committed()
        catalog = {t.name for t in full_corpus()}
        pinned = {row["name"] for row in committed["litmus"]}
        assert pinned == catalog, (
            "portability matrix out of sync with the catalog — "
            "regenerate tests/corpus/portability_verdicts.json"
        )
        assert all(row["complete"] for row in committed["litmus"])

    def test_litmus_verdicts_match_catalog_expectations(self):
        """The observed columns are the catalog's pinned verdicts: the
        matrix certifies the models *and* the expectations agree."""
        expectations = {t.name: t for t in full_corpus()}
        for row in self._committed()["litmus"]:
            test = expectations[row["name"]]
            observed = row["observed"]
            assert observed["sc"] == test.allowed_sc, row
            assert observed["arm"] == test.allowed_rm, row
            if test.expected_tso is not None:
                assert observed["tso"] == test.expected_tso, row

    def test_sekvm_verdicts_match_expectations_under_every_model(self):
        """A case the Arm verification accepts must verify under the
        stronger models too — the anti-monotone face of containment."""
        for row in self._committed()["sekvm"]:
            assert row["verified"]["arm"] == row["expected"], row
            if row["verified"]["arm"]:
                assert row["verified"]["tso"], row
                assert row["verified"]["sc"], row
