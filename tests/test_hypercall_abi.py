"""Tests for the numbered hypercall ABI (the EL2 trap surface)."""

import pytest

from repro.errors import SecurityViolation
from repro.sekvm import SeKVMSystem, make_image
from repro.sekvm.hypercalls import HVC, HvcStatus, HypercallInterface
from repro.sekvm.vm import image_digest


@pytest.fixture
def iface():
    system = SeKVMSystem(total_pages=128)
    return system, HypercallInterface(system.kcore)


def boot_via_abi(system, iface, contents):
    cpu = 0
    result = iface.hvc(cpu, HVC.GEN_VMID)
    assert result.ok
    vmid = result.value
    assert iface.hvc(cpu, HVC.REGISTER_VCPU, vmid, 0).ok
    pfns = []
    for content in contents:
        pfn = system.kserv.alloc_page()
        vpn = system.kserv.map_and_write(cpu, pfn, content)
        assert iface.hvc(cpu, HVC.UNMAP_PFN_KSERV, vpn).ok
        pfns.append(pfn)
    iface.staged_images[vmid] = (pfns, image_digest(contents))
    assert iface.hvc(cpu, HVC.BOOT_VM, vmid).ok
    return vmid


class TestDispatch:
    def test_unknown_number_einval(self, iface):
        _, hc = iface
        assert hc.hvc(0, 0x999).status is HvcStatus.EINVAL

    def test_wrong_arity_einval(self, iface):
        _, hc = iface
        assert hc.hvc(0, HVC.RUN_VCPU, 1).status is HvcStatus.EINVAL

    def test_calls_are_recorded(self, iface):
        _, hc = iface
        hc.hvc(0, HVC.GEN_VMID)
        assert hc.calls == [(HVC.GEN_VMID, ())]


class TestLifecycleViaABI:
    def test_full_boot_and_run(self, iface):
        system, hc = iface
        vmid = boot_via_abi(system, hc, [5, 6])
        assert hc.hvc(1, HVC.RUN_VCPU, vmid, 0).ok
        assert hc.hvc(1, HVC.STOP_VCPU, vmid, 0).ok
        assert system.guest_read(vmid, 0) == 5

    def test_boot_without_staged_image_refused(self, iface):
        system, hc = iface
        vmid = hc.hvc(0, HVC.GEN_VMID).value
        result = hc.hvc(0, HVC.BOOT_VM, vmid)
        assert not result.ok

    def test_run_unknown_vm_enoent(self, iface):
        _, hc = iface
        assert hc.hvc(0, HVC.RUN_VCPU, 42, 0).status is HvcStatus.ENOENT

    def test_teardown_returns_page_count(self, iface):
        system, hc = iface
        vmid = boot_via_abi(system, hc, [1, 2, 3])
        result = hc.hvc(0, HVC.TEARDOWN_VM, vmid)
        assert result.ok and result.value == 3


class TestPolicyViaABI:
    def test_mapping_foreign_page_eperm(self, iface):
        system, hc = iface
        vmid = boot_via_abi(system, hc, [1])
        vm_pfn = system.vm_pages(vmid)[0]
        result = hc.hvc(0, HVC.MAP_PFN_KSERV, 0x99, vm_pfn)
        assert result.status is HvcStatus.EPERM

    def test_kcore_page_map_is_security_violation(self, iface):
        system, hc = iface
        kcore_pfn = system.kcore_pages()[0]
        # KCore pages trip the SecurityViolation invariant, which is
        # NOT converted to an errno: verified KCore must make this
        # unreachable, and the model surfaces it loudly.
        with pytest.raises(SecurityViolation):
            hc.hvc(0, HVC.MAP_PFN_KSERV, 0x99, kcore_pfn)

    def test_vipi_via_abi(self, iface):
        system, hc = iface
        vmid = boot_via_abi(system, hc, [1])
        assert hc.hvc(0, HVC.SEND_VIPI, vmid, 0, 0).ok
        assert system.kcore.vgic.for_vm(vmid).has_pending(0)

    def test_register_vcpu_frozen_once_running(self, iface):
        system, hc = iface
        vmid = boot_via_abi(system, hc, [1])
        assert hc.hvc(1, HVC.RUN_VCPU, vmid, 0).ok  # state -> RUNNING
        result = hc.hvc(0, HVC.REGISTER_VCPU, vmid, 1)
        assert result.status is HvcStatus.EPERM

    def test_smmu_map_unmap_via_abi(self, iface):
        system, hc = iface
        pfn = system.kserv.alloc_page()
        assert hc.hvc(0, HVC.SMMU_MAP, 7, 0x40, pfn, -1).ok
        assert system.smmu.dma_access(7, 0x40).ok
        assert hc.hvc(0, HVC.SMMU_UNMAP, 7, 0x40).ok
        assert system.smmu.dma_access(7, 0x40).faulted

    def test_smmu_unmap_missing_enoent(self, iface):
        _, hc = iface
        assert hc.hvc(0, HVC.SMMU_UNMAP, 7, 0x80).status is HvcStatus.ENOENT
