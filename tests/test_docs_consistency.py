"""Meta-tests: the documentation references real code.

Docs drift silently; these tests resolve every ``repro.x.y`` dotted
reference in the markdown files against the live package, check that
every file path the docs mention exists, and that the examples the
README lists are the examples that ship.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "MODEL.md",
    ROOT / "docs" / "VERIFICATION.md",
    ROOT / "docs" / "API.md",
]

MODULE_REF = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
PATH_REF = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_/.-]+\.(?:py|md))`"
)


def _doc_text():
    return {doc: doc.read_text(encoding="utf-8") for doc in DOCS}


class TestDocsConsistency:
    def test_all_docs_exist(self):
        for doc in DOCS:
            assert doc.is_file(), doc

    @pytest.mark.parametrize("doc", DOCS, ids=[d.name for d in DOCS])
    def test_module_references_resolve(self, doc):
        text = doc.read_text(encoding="utf-8")
        for ref in MODULE_REF.findall(text):
            module_path = ref
            attr = None
            try:
                importlib.import_module(module_path)
                continue
            except ImportError:
                module_path, _, attr = ref.rpartition(".")
            module = importlib.import_module(module_path)
            assert hasattr(module, attr), f"{doc.name}: {ref} does not exist"

    @pytest.mark.parametrize("doc", DOCS, ids=[d.name for d in DOCS])
    def test_file_references_exist(self, doc):
        text = doc.read_text(encoding="utf-8")
        for ref in PATH_REF.findall(text):
            assert (ROOT / ref).exists(), f"{doc.name}: missing {ref}"

    def test_readme_lists_every_example(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in readme, (
                f"README does not mention examples/{example.name}"
            )

    def test_design_lists_every_benchmark(self):
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for bench in sorted((ROOT / "benchmarks").glob("test_*.py")):
            assert bench.name in design, (
                f"DESIGN.md experiment index misses benchmarks/{bench.name}"
            )

    def test_experiments_references_real_benchmarks(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        mentioned = re.findall(r"benchmarks/(test_[a-z0-9_]+\.py)", experiments)
        assert mentioned
        for name in mentioned:
            assert (ROOT / "benchmarks" / name).is_file(), name
