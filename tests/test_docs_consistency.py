"""Meta-tests: the documentation references real code.

Docs drift silently; these tests resolve every ``repro.x.y`` dotted
reference in the markdown files against the live package, check that
every file path the docs mention exists, and that the examples the
README lists are the examples that ship.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "MODEL.md",
    ROOT / "docs" / "VERIFICATION.md",
    ROOT / "docs" / "API.md",
    ROOT / "docs" / "OBSERVABILITY.md",
    ROOT / "docs" / "SERVING.md",
    ROOT / "docs" / "PORTABILITY.md",
]

MODULE_REF = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
PATH_REF = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_/.-]+\.(?:py|md))`"
)


def _doc_text():
    return {doc: doc.read_text(encoding="utf-8") for doc in DOCS}


class TestDocsConsistency:
    def test_all_docs_exist(self):
        for doc in DOCS:
            assert doc.is_file(), doc

    @pytest.mark.parametrize("doc", DOCS, ids=[d.name for d in DOCS])
    def test_module_references_resolve(self, doc):
        text = doc.read_text(encoding="utf-8")
        for ref in MODULE_REF.findall(text):
            module_path = ref
            attr = None
            try:
                importlib.import_module(module_path)
                continue
            except ImportError:
                module_path, _, attr = ref.rpartition(".")
            module = importlib.import_module(module_path)
            assert hasattr(module, attr), f"{doc.name}: {ref} does not exist"

    @pytest.mark.parametrize("doc", DOCS, ids=[d.name for d in DOCS])
    def test_file_references_exist(self, doc):
        text = doc.read_text(encoding="utf-8")
        for ref in PATH_REF.findall(text):
            assert (ROOT / ref).exists(), f"{doc.name}: missing {ref}"

    def test_docs_list_covers_the_docs_directory(self):
        """Every ``docs/*.md`` file is in DOCS — new guides get their
        references checked automatically, or this fails."""
        listed = {doc for doc in DOCS if doc.parent.name == "docs"}
        on_disk = set((ROOT / "docs").glob("*.md"))
        assert listed == on_disk, (
            f"DOCS out of sync with docs/: {sorted(p.name for p in listed ^ on_disk)}"
        )

    def test_readme_documentation_map_links_every_doc(self):
        """The README's documentation map must mention every guide in
        ``docs/`` — an unlinked guide is invisible."""
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        for doc in sorted((ROOT / "docs").glob("*.md")):
            assert f"docs/{doc.name}" in readme, (
                f"README documentation map does not link docs/{doc.name}"
            )

    def test_readme_lists_every_example(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in readme, (
                f"README does not mention examples/{example.name}"
            )

    def test_design_lists_every_benchmark(self):
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for bench in sorted((ROOT / "benchmarks").glob("test_*.py")):
            assert bench.name in design, (
                f"DESIGN.md experiment index misses benchmarks/{bench.name}"
            )

    def test_experiments_references_real_benchmarks(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        mentioned = re.findall(r"benchmarks/(test_[a-z0-9_]+\.py)", experiments)
        assert mentioned
        for name in mentioned:
            assert (ROOT / "benchmarks" / name).is_file(), name


CLI_FLAG = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")

#: Flags the docs mention that belong to external tools (pytest,
#: pytest-benchmark, pip) or to the example scripts, not to the
#: ``repro`` CLI itself.
EXTERNAL_FLAGS = {
    "--benchmark-only", "--benchmark-json", "--benchmark-autosave",
    "--benchmark-compare", "--tb",
    "--all",  # examples/verify_sekvm.py
}

ENV_KNOB = re.compile(r"\bREPRO_[A-Z_]+\b")


def _cli_flags():
    """Every ``--long-flag`` the real parser (or any subparser) accepts."""
    import argparse

    from repro.cli import build_parser

    def walk(parser):
        flags = set()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    flags |= walk(sub)
            else:
                flags.update(
                    opt for opt in action.option_strings
                    if opt.startswith("--")
                )
        return flags

    return walk(build_parser())


def _env_knobs(*trees):
    """Every ``REPRO_*`` environment knob the given trees mention."""
    knobs = set()
    for tree in trees:
        for path in (ROOT / tree).rglob("*.py"):
            knobs.update(ENV_KNOB.findall(path.read_text(encoding="utf-8")))
    return knobs


class TestCliDocsConsistency:
    """Every flag/knob in the docs exists; every one that exists is
    documented.  Both directions — missing docs and stale docs fail."""

    def test_documented_flags_exist(self):
        real = _cli_flags() | EXTERNAL_FLAGS
        for doc, text in _doc_text().items():
            for flag in CLI_FLAG.findall(text):
                assert flag in real, (
                    f"{doc.name} documents {flag}, which no repro "
                    "subcommand accepts (stale docs?)"
                )

    def test_every_flag_is_documented(self):
        documented = set()
        for text in _doc_text().values():
            documented.update(CLI_FLAG.findall(text))
        for flag in _cli_flags() - {"--help"}:
            assert flag in documented, (
                f"CLI flag {flag} is undocumented — add it to docs/API.md"
            )

    def test_documented_env_knobs_exist(self):
        real = _env_knobs("src", "tests", "benchmarks")
        for doc, text in _doc_text().items():
            for knob in ENV_KNOB.findall(text):
                assert knob in real, (
                    f"{doc.name} documents {knob}, which nothing in the "
                    "code reads (stale docs?)"
                )

    def test_every_env_knob_is_documented(self):
        documented = set()
        for text in _doc_text().values():
            documented.update(ENV_KNOB.findall(text))
        for knob in _env_knobs("src"):
            assert knob in documented, (
                f"env knob {knob} is undocumented — add it to docs/API.md"
            )
