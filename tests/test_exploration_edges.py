"""Edge cases of the exploration machinery: budgets, deadlocks,
invalid terminals, and the exhaustiveness discipline."""

import pytest

from repro.errors import ExplorationBudgetExceeded
from repro.ir import Reg, ThreadBuilder, build_program
from repro.memory import (
    ModelConfig,
    explore,
    explore_or_raise,
    explore_promising,
)

X, Y = 0x10, 0x20


class TestBudgets:
    def test_memory_budget_cut_marks_incomplete(self):
        # A loop that stores each iteration grows the timeline without
        # bound; the memory budget must cut it and flag incompleteness.
        b = ThreadBuilder(0)
        top = b.fresh_label("top")
        b.label(top)
        b.faa("t", X)
        b.jump(top)
        program = build_program([b], initial_memory={X: 0})
        result = explore(program, ModelConfig(relaxed=False, max_memory=8))
        assert not result.complete
        assert result.cut_paths > 0

    def test_explore_or_raise_on_budget(self):
        b = ThreadBuilder(0)
        top = b.fresh_label("top")
        b.label(top)
        b.faa("t", X)
        b.jump(top)
        program = build_program([b], initial_memory={X: 0})
        with pytest.raises(ExplorationBudgetExceeded):
            explore_or_raise(program, ModelConfig(relaxed=False, max_memory=8))

    def test_explore_or_raise_passes_when_complete(self):
        b = ThreadBuilder(0)
        b.store(X, 1)
        program = build_program([b], initial_memory={X: 0})
        result = explore_or_raise(program, ModelConfig(relaxed=False))
        assert result.complete

    def test_state_budget_cut(self):
        threads = []
        for tid in range(3):
            b = ThreadBuilder(tid)
            b.store(X, tid).store(Y, tid).load("a", X).load("b", Y)
            threads.append(b)
        program = build_program(threads, initial_memory={X: 0, Y: 0})
        result = explore(program, ModelConfig(relaxed=True, max_states=5))
        assert not result.complete


class TestInvalidTerminals:
    def test_unfulfillable_promise_paths_discarded(self):
        # With a promise budget but no consumer, paths where a promise is
        # made but the thread cannot fulfill it must not leak behaviors.
        b = ThreadBuilder(0)
        b.store(X, 1)
        program = build_program([b], observed={0: []},
                                initial_memory={X: 0})
        result = explore_promising(program, observe_locs=[X])
        # Exactly one final memory value: 1.  (A leaked unfulfilled
        # promise would show up as an extra behavior.)
        finals = {dict(beh.memory)[X] for beh in result.behaviors}
        assert finals == {1}

    def test_empty_program_single_behavior(self):
        b = ThreadBuilder(0)
        program = build_program([b], initial_memory={X: 7})
        result = explore_promising(program, observe_locs=[X])
        assert len(result.behaviors) == 1
        (behavior,) = result.behaviors
        assert dict(behavior.memory)[X] == 7

    def test_observed_register_never_written_is_none(self):
        b = ThreadBuilder(0)
        b.nop()
        thread = b.build(observed=("ghost",))
        from repro.ir.program import make_program

        program = make_program([thread])
        result = explore_promising(program)
        (behavior,) = result.behaviors
        assert behavior.registers == ((0, "ghost", None),)


class TestDeterminism:
    def test_exploration_is_deterministic(self):
        t0 = ThreadBuilder(0)
        t0.store(X, 1).load("r0", Y)
        t1 = ThreadBuilder(1)
        t1.store(Y, 1).load("r1", X)
        program = build_program(
            [t0, t1], observed={0: ["r0"], 1: ["r1"]},
            initial_memory={X: 0, Y: 0},
        )
        a = explore_promising(program)
        b = explore_promising(program)
        assert a.behaviors == b.behaviors
        assert a.states_explored == b.states_explored
